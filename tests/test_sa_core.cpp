// SA core: packets, mappings and the §5 move scheme, the eq. 3-6 cost
// model with incremental deltas, and the annealing loop.

#include <gtest/gtest.h>

#include <set>

#include "core/annealer.hpp"
#include "core/cost.hpp"
#include "core/mapping.hpp"
#include "core/packet.hpp"
#include "topology/builders.hpp"

namespace dagsched::sa {
namespace {

/// A synthetic packet: `n` tasks with levels 10, 20, ... us and one input
/// of weight 4us each (task i's input sits on processor i mod np).
AnnealingPacket make_packet(int n, int np) {
  AnnealingPacket packet;
  for (ProcId p = 0; p < np; ++p) packet.procs.push_back(p);
  for (int i = 0; i < n; ++i) {
    PacketTask task;
    task.task = i;
    task.level = us(static_cast<std::int64_t>(10 * (i + 1)));
    task.inputs.push_back(PacketTask::Input{
        static_cast<ProcId>(i % np), us(std::int64_t{4})});
    task.total_input_weight = us(std::int64_t{4});
    packet.tasks.push_back(std::move(task));
  }
  return packet;
}

TEST(Packet, SelectionCount) {
  EXPECT_EQ(make_packet(5, 3).num_selected(), 3);
  EXPECT_EQ(make_packet(2, 6).num_selected(), 2);
  EXPECT_EQ(make_packet(4, 4).num_selected(), 4);
}

TEST(Mapping, HighestLevelInitSelectsTopLevels) {
  const AnnealingPacket packet = make_packet(5, 2);
  Rng rng(1);
  const Mapping m = Mapping::initial(packet, InitKind::HighestLevel, rng);
  EXPECT_EQ(m.assigned_count(), 2);
  // Tasks 4 (50us) and 3 (40us) must be the selected ones.
  EXPECT_TRUE(m.is_assigned(4));
  EXPECT_TRUE(m.is_assigned(3));
  EXPECT_FALSE(m.is_assigned(0));
  // Slot bookkeeping is consistent.
  for (int p = 0; p < 2; ++p) {
    const int task = m.task_at(p);
    ASSERT_GE(task, 0);
    EXPECT_EQ(m.proc_slot_of(task), p);
  }
}

TEST(Mapping, RandomInitIsValidAndSeeded) {
  const AnnealingPacket packet = make_packet(6, 4);
  Rng rng_a(9);
  Rng rng_b(9);
  const Mapping a = Mapping::initial(packet, InitKind::Random, rng_a);
  const Mapping b = Mapping::initial(packet, InitKind::Random, rng_b);
  EXPECT_EQ(a.assigned_count(), 4);
  for (int t = 0; t < 6; ++t) {
    EXPECT_EQ(a.proc_slot_of(t), b.proc_slot_of(t));
  }
}

TEST(Mapping, MoveKindsPreserveInvariants) {
  const AnnealingPacket packet = make_packet(6, 4);  // 2 unassigned
  Rng rng(3);
  Mapping m = Mapping::initial(packet, InitKind::Random, rng);
  std::set<MoveKind> seen;
  for (int i = 0; i < 2000; ++i) {
    Move move;
    ASSERT_TRUE(m.propose(packet, rng, move));
    seen.insert(move.kind);
    const Mapping before = m;
    m.apply(move);
    EXPECT_EQ(m.assigned_count(), 4);
    // proc/task tables stay mutually consistent
    for (int p = 0; p < packet.num_procs(); ++p) {
      const int task = m.task_at(p);
      if (task >= 0) ASSERT_EQ(m.proc_slot_of(task), p);
    }
    m.revert(move);
    for (int t = 0; t < packet.num_tasks(); ++t) {
      ASSERT_EQ(m.proc_slot_of(t), before.proc_slot_of(t));
    }
    m.apply(move);  // walk on
  }
  // With N > N_idle both Swap and Replace must occur (no free processor,
  // so plain Move cannot).
  EXPECT_TRUE(seen.contains(MoveKind::Swap));
  EXPECT_TRUE(seen.contains(MoveKind::Replace));
  EXPECT_FALSE(seen.contains(MoveKind::Move));
}

TEST(Mapping, MoveKindWhenProcessorsOutnumberTasks) {
  const AnnealingPacket packet = make_packet(2, 5);
  Rng rng(3);
  Mapping m = Mapping::initial(packet, InitKind::HighestLevel, rng);
  std::set<MoveKind> seen;
  for (int i = 0; i < 500; ++i) {
    Move move;
    ASSERT_TRUE(m.propose(packet, rng, move));
    seen.insert(move.kind);
    m.apply(move);
    ASSERT_EQ(m.assigned_count(), 2);
  }
  // All tasks are always assigned: Replace impossible.
  EXPECT_TRUE(seen.contains(MoveKind::Move));
  EXPECT_FALSE(seen.contains(MoveKind::Replace));
}

TEST(Mapping, NoMoveForSingleTaskSingleProc) {
  const AnnealingPacket packet = make_packet(1, 1);
  Rng rng(3);
  Mapping m = Mapping::initial(packet, InitKind::HighestLevel, rng);
  Move move;
  EXPECT_FALSE(m.propose(packet, rng, move));
}

TEST(Cost, LoadTermIsMinusSelectedLevels) {
  const AnnealingPacket packet = make_packet(5, 2);
  const Topology topology = topo::complete(2);
  const PacketCostModel cost(packet, topology, CommModel::paper_default(),
                             0.5, 0.5);
  Rng rng(1);
  const Mapping m = Mapping::initial(packet, InitKind::HighestLevel, rng);
  const CostBreakdown c = cost.evaluate(m);
  // Selected: levels 50 and 40 -> F_b = -90.
  EXPECT_DOUBLE_EQ(c.load, -90.0);
}

TEST(Cost, CommTermUsesEquation4) {
  AnnealingPacket packet;
  packet.procs = {0, 1, 2};
  PacketTask task;
  task.task = 0;
  task.level = us(std::int64_t{10});
  task.inputs.push_back(PacketTask::Input{0, us(std::int64_t{4})});
  task.total_input_weight = us(std::int64_t{4});
  packet.tasks.push_back(task);
  const Topology topology = topo::line(3);
  const CommModel comm = CommModel::paper_default();
  const PacketCostModel cost(packet, topology, comm, 0.5, 0.5);
  // Input lives on P0: local = 0; P1 (d=1) = w + sigma = 11;
  // P2 (d=2) = 2w + tau + sigma = 24.
  EXPECT_DOUBLE_EQ(cost.task_comm_cost(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(cost.task_comm_cost(0, 1), 11.0);
  EXPECT_DOUBLE_EQ(cost.task_comm_cost(0, 2), 24.0);
}

TEST(Cost, NormalizationRanges) {
  const AnnealingPacket packet = make_packet(5, 2);
  const Topology topology = topo::complete(2);
  const PacketCostModel cost(packet, topology, CommModel::paper_default(),
                             0.5, 0.5);
  // dF_b = (Max - Min) / N_idle = ((50+40) - (10+20)) / 2 = 30.
  EXPECT_DOUBLE_EQ(cost.delta_fb(), 30.0);
  // dF_c: 2 heaviest communicators at the diameter (1):
  // 2 x (4 + sigma) = 22.
  EXPECT_DOUBLE_EQ(cost.delta_fc(), 22.0);
}

TEST(Cost, DegenerateRangesAreGuarded) {
  // All levels equal and no inputs: both ranges collapse and are guarded
  // to 1 so the normalized cost stays finite.
  AnnealingPacket packet;
  packet.procs = {0, 1};
  for (int i = 0; i < 3; ++i) {
    PacketTask task;
    task.task = i;
    task.level = us(std::int64_t{10});
    packet.tasks.push_back(task);
  }
  const Topology topology = topo::complete(2);
  const PacketCostModel cost(packet, topology, CommModel::disabled(), 0.5,
                             0.5);
  EXPECT_DOUBLE_EQ(cost.delta_fb(), 1.0);
  EXPECT_DOUBLE_EQ(cost.delta_fc(), 1.0);
  Rng rng(1);
  const Mapping m = Mapping::initial(packet, InitKind::HighestLevel, rng);
  EXPECT_TRUE(std::isfinite(cost.evaluate(m).total));
}

TEST(Cost, WeightsMustSumToOne) {
  const AnnealingPacket packet = make_packet(3, 2);
  const Topology topology = topo::complete(2);
  EXPECT_THROW(PacketCostModel(packet, topology,
                               CommModel::paper_default(), 0.5, 0.6),
               std::invalid_argument);
  EXPECT_THROW(PacketCostModel(packet, topology,
                               CommModel::paper_default(), -0.5, 1.5),
               std::invalid_argument);
  EXPECT_NO_THROW(PacketCostModel(packet, topology,
                                  CommModel::paper_default(), 0.0, 1.0));
}

class MoveDeltaSeeds : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MoveDeltaSeeds, IncrementalDeltaMatchesFullEvaluation) {
  const AnnealingPacket packet = make_packet(7, 4);
  const Topology topology = topo::ring(4);
  const PacketCostModel cost(packet, topology, CommModel::paper_default(),
                             0.4, 0.6);
  Rng rng(GetParam());
  Mapping m = Mapping::initial(packet, InitKind::Random, rng);
  for (int i = 0; i < 500; ++i) {
    Move move;
    ASSERT_TRUE(m.propose(packet, rng, move));
    const double before = cost.evaluate(m).total;
    const double delta = cost.move_delta(m, move);
    m.apply(move);
    const double after = cost.evaluate(m).total;
    ASSERT_NEAR(after - before, delta, 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MoveDeltaSeeds,
                         ::testing::Values(1, 2, 3, 4, 5, 99));

TEST(Annealer, NeverWorsensFromInitialBest) {
  const AnnealingPacket packet = make_packet(8, 3);
  const Topology topology = topo::ring(3);
  const PacketCostModel cost(packet, topology, CommModel::paper_default(),
                             0.5, 0.5);
  AnnealOptions options;
  Rng rng(11);
  const AnnealResult result = anneal_packet(packet, cost, options, rng);
  EXPECT_LE(result.best_cost.total, result.initial_cost.total + 1e-12);
  EXPECT_GT(result.iterations, 0);
  // Returned mapping's cost equals the reported best.
  EXPECT_NEAR(cost.evaluate(result.mapping).total, result.best_cost.total,
              1e-9);
}

TEST(Annealer, FindsTheObviousOptimum) {
  // One task, one input on P0, processors P0..P2 idle: the optimum is
  // placing the task on P0 with zero comm cost... but a single task on
  // multiple processors: with levels constant, pure comm optimization.
  AnnealingPacket packet;
  packet.procs = {0, 1, 2};
  PacketTask task;
  task.task = 0;
  task.level = us(std::int64_t{10});
  task.inputs.push_back(PacketTask::Input{0, us(std::int64_t{8})});
  task.total_input_weight = us(std::int64_t{8});
  packet.tasks.push_back(task);
  const Topology topology = topo::line(3);
  const PacketCostModel cost(packet, topology, CommModel::paper_default(),
                             0.5, 0.5);
  AnnealOptions options;
  Rng rng(5);
  const AnnealResult result = anneal_packet(packet, cost, options, rng);
  EXPECT_EQ(result.mapping.proc_slot_of(0), 0);
  EXPECT_DOUBLE_EQ(result.best_cost.comm, 0.0);
}

TEST(Annealer, SelectsHighestLevelsWhenCommIsFree) {
  const AnnealingPacket packet = make_packet(6, 2);
  const Topology topology = topo::complete(2);
  const PacketCostModel cost(packet, topology, CommModel::disabled(), 0.5,
                             0.5);
  AnnealOptions options;
  options.init = InitKind::Random;
  Rng rng(17);
  const AnnealResult result = anneal_packet(packet, cost, options, rng);
  // Best selection: tasks 5 (60us) and 4 (50us) -> F_b = -110.
  EXPECT_DOUBLE_EQ(result.best_cost.load, -110.0);
}

TEST(Annealer, ConvergenceStopRule) {
  // A single-task single-proc packet stops immediately; a trivial packet
  // with no improving moves converges within the window.
  const AnnealingPacket packet = make_packet(3, 3);
  const Topology topology = topo::complete(3);
  const PacketCostModel cost(packet, topology, CommModel::disabled(), 0.5,
                             0.5);
  AnnealOptions options;
  options.cooling.max_steps = 500;
  options.convergence_window = 5;
  Rng rng(23);
  const AnnealResult result = anneal_packet(packet, cost, options, rng);
  // All tasks assigned regardless of mapping and comm disabled: the cost
  // is constant, so the run must stop far before 500 steps.
  EXPECT_TRUE(result.converged_early);
  EXPECT_LT(result.temperature_steps, 50);
}

TEST(Annealer, TrajectoryRecordsEveryProposal) {
  const AnnealingPacket packet = make_packet(5, 2);
  const Topology topology = topo::complete(2);
  const PacketCostModel cost(packet, topology, CommModel::paper_default(),
                             0.5, 0.5);
  AnnealOptions options;
  options.cooling.max_steps = 10;
  options.moves_per_temperature = 7;
  options.convergence_window = 100;  // don't stop early
  Rng rng(29);
  PacketTrajectory trajectory;
  const AnnealResult result =
      anneal_packet(packet, cost, options, rng, &trajectory);
  EXPECT_EQ(static_cast<int>(trajectory.points.size()), result.iterations);
  EXPECT_EQ(result.iterations, 70);
  // Temperatures along the trajectory are non-increasing.
  for (std::size_t i = 1; i < trajectory.points.size(); ++i) {
    EXPECT_LE(trajectory.points[i].temperature,
              trajectory.points[i - 1].temperature + 1e-12);
  }
}

TEST(Annealer, OptionsValidation) {
  AnnealOptions options;
  options.wb = 0.7;
  options.wc = 0.7;
  EXPECT_THROW(options.validate(), std::invalid_argument);
  options = AnnealOptions{};
  options.convergence_window = 0;
  EXPECT_THROW(options.validate(), std::invalid_argument);
  options = AnnealOptions{};
  options.moves_per_temperature = -1;
  EXPECT_THROW(options.validate(), std::invalid_argument);
  options = AnnealOptions{};
  EXPECT_NO_THROW(options.validate());
}

}  // namespace
}  // namespace dagsched::sa
