// Smoke test: the umbrella library links and the full pipeline runs.

#include <gtest/gtest.h>

#include "core/sa_scheduler.hpp"
#include "sim/engine.hpp"
#include "topology/builders.hpp"
#include "workloads/registry.hpp"

namespace dagsched {
namespace {

TEST(Bootstrap, FullPipelineRuns) {
  const workloads::Workload w = workloads::by_name("NE");
  const Topology topo = topo::hypercube(3);
  sa::SaScheduler scheduler;
  const sim::SimResult result =
      sim::simulate(w.graph, topo, CommModel::paper_default(), scheduler);
  EXPECT_GT(result.makespan, 0);
  EXPECT_EQ(static_cast<int>(result.placement.size()), w.graph.num_tasks());
}

}  // namespace
}  // namespace dagsched
