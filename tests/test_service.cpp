// The scheduling service (src/service/): canonical instance hashing
// (relabeling invariance + sensitivity), the plan cache's LRU behavior,
// admission control, the request/response wire format, end-to-end
// ScheduleService semantics (hit/miss/bypass, isomorphic plan mapping),
// and in-process schedd runs over string streams.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <numeric>
#include <set>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "graph/generators.hpp"
#include "service/api.hpp"
#include "service/daemon.hpp"
#include "service/graph_hash.hpp"
#include "service/plan_cache.hpp"
#include "service/service.hpp"
#include "topology/builders.hpp"
#include "util/rng.hpp"

namespace dagsched {
namespace {

using service::CacheStatus;
using service::CanonicalInstance;
using service::PlanCache;
using service::ResponseStatus;
using service::ScheduleRequest;
using service::ScheduleResponse;
using service::ScheduleService;
using service::ServeOptions;
using service::canonicalize_instance;
using service::instance_cache_key;

TaskGraph diamond_graph() {
  TaskGraph graph("diamond");
  graph.add_task("a", us(std::int64_t{100}));
  graph.add_task("b", us(std::int64_t{200}));
  graph.add_task("c", us(std::int64_t{300}));
  graph.add_task("d", us(std::int64_t{50}));
  graph.add_edge(0, 1, us(std::int64_t{10}));
  graph.add_edge(0, 2, us(std::int64_t{20}));
  graph.add_edge(1, 3, us(std::int64_t{5}));
  graph.add_edge(2, 3, us(std::int64_t{5}));
  return graph;
}

/// `permutation[old]` = new label; edges re-added in permuted order.
TaskGraph relabel(const TaskGraph& graph,
                  const std::vector<TaskId>& permutation) {
  std::vector<TaskId> inverse(permutation.size());
  for (std::size_t t = 0; t < permutation.size(); ++t) {
    inverse[static_cast<std::size_t>(permutation[t])] =
        static_cast<TaskId>(t);
  }
  TaskGraph out(graph.name());
  for (TaskId t = 0; t < graph.num_tasks(); ++t) {
    const TaskId old = inverse[static_cast<std::size_t>(t)];
    out.add_task(graph.task_name(old), graph.duration(old));
  }
  // Reversed edge order doubles as the edge-reordering invariance check.
  const auto& edges = graph.edges();
  for (auto it = edges.rbegin(); it != edges.rend(); ++it) {
    out.add_edge(permutation[static_cast<std::size_t>(it->from)],
                 permutation[static_cast<std::size_t>(it->to)], it->weight);
  }
  return out;
}

// ---------------------------------------------------------- graph hash

TEST(GraphHash, TaskRelabelingAndEdgeOrderInvariant) {
  const TaskGraph graph = diamond_graph();
  const Topology topology = topo::hypercube(2);
  const CommModel comm = CommModel::paper_default();
  const CanonicalInstance base =
      canonicalize_instance(graph, topology, comm);

  const std::vector<TaskId> permutation{2, 3, 0, 1};
  const CanonicalInstance relabeled =
      canonicalize_instance(relabel(graph, permutation), topology, comm);
  EXPECT_EQ(base.key, relabeled.key);
  EXPECT_EQ(base.hash, relabeled.hash);
  // The canonical index of a task is label-independent, so composing the
  // permutation with the relabeled mapping recovers the original one.
  for (TaskId t = 0; t < graph.num_tasks(); ++t) {
    EXPECT_EQ(base.canonical_of_task[static_cast<std::size_t>(t)],
              relabeled.canonical_of_task[static_cast<std::size_t>(
                  permutation[static_cast<std::size_t>(t)])]);
  }
}

TEST(GraphHash, ProcessorRelabelingInvariant) {
  const TaskGraph graph = diamond_graph();
  const CommModel comm = CommModel::paper_default();
  // A 4-ring and the same ring with rotated processor labels.
  const Topology ring =
      Topology::from_links(4, {{0, 1}, {1, 2}, {2, 3}, {3, 0}}, "ring:4");
  const Topology rotated =
      Topology::from_links(4, {{1, 2}, {2, 3}, {3, 0}, {0, 1}}, "ring:4");
  const Topology shuffled =
      Topology::from_links(4, {{2, 0}, {0, 3}, {3, 1}, {1, 2}}, "ring:4");
  EXPECT_EQ(canonicalize_instance(graph, ring, comm).key,
            canonicalize_instance(graph, rotated, comm).key);
  EXPECT_EQ(canonicalize_instance(graph, ring, comm).key,
            canonicalize_instance(graph, shuffled, comm).key);
}

TEST(GraphHash, SensitiveToEveryInstanceComponent) {
  const TaskGraph graph = diamond_graph();
  const Topology topology = topo::hypercube(2);
  const CommModel comm = CommModel::paper_default();
  const std::string base = canonicalize_instance(graph, topology, comm).key;

  TaskGraph duration_changed = diamond_graph();
  duration_changed.set_duration(1, us(std::int64_t{201}));
  EXPECT_NE(base,
            canonicalize_instance(duration_changed, topology, comm).key);

  TaskGraph weight_changed("diamond");
  for (TaskId t = 0; t < graph.num_tasks(); ++t) {
    weight_changed.add_task(graph.task_name(t), graph.duration(t));
  }
  weight_changed.add_edge(0, 1, us(std::int64_t{11}));
  weight_changed.add_edge(0, 2, us(std::int64_t{20}));
  weight_changed.add_edge(1, 3, us(std::int64_t{5}));
  weight_changed.add_edge(2, 3, us(std::int64_t{5}));
  EXPECT_NE(base,
            canonicalize_instance(weight_changed, topology, comm).key);

  EXPECT_NE(base,
            canonicalize_instance(graph, topo::hypercube(3), comm).key);
  EXPECT_NE(base, canonicalize_instance(graph, topo::bus(4), comm).key);

  CommModel sigma_changed = comm;
  sigma_changed.sigma += us(std::int64_t{1});
  EXPECT_NE(base,
            canonicalize_instance(graph, topology, sigma_changed).key);
  EXPECT_NE(base,
            canonicalize_instance(graph, topology,
                                  CommModel::disabled()).key);
}

TEST(GraphHash, RandomRelabelingSweepNoCollisions) {
  // Across several generator families and seeds: every instance's key is
  // unique, and a random relabeling of each maps to the same key.
  const Topology topology = topo::hypercube(3);
  const CommModel comm = CommModel::paper_default();
  std::set<std::string> keys;
  Rng rng(2026);
  int instances = 0;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    gen::GnpDagOptions gnp;
    gnp.num_tasks = 12;
    gnp.edge_probability = 0.3;
    gnp.min_duration = us(std::int64_t{10});
    gnp.max_duration = us(std::int64_t{500});
    gnp.min_weight = us(std::int64_t{1});
    gnp.max_weight = us(std::int64_t{50});
    gnp.seed = seed;
    gen::LayeredDagOptions layered;
    layered.layers = 4;
    layered.min_width = 2;
    layered.max_width = 4;
    layered.edge_probability = 0.5;
    layered.min_duration = us(std::int64_t{10});
    layered.max_duration = us(std::int64_t{300});
    layered.min_weight = us(std::int64_t{1});
    layered.max_weight = us(std::int64_t{20});
    layered.seed = seed;
    for (const TaskGraph& graph :
         {gen::gnp_dag(gnp), gen::layered_dag(layered),
          gen::out_tree(3, 2, us(100 + 7 * static_cast<Time>(seed)),
                        us(std::int64_t{10}))}) {
      const CanonicalInstance base =
          canonicalize_instance(graph, topology, comm);
      EXPECT_TRUE(keys.insert(base.key).second)
          << "key collision between structurally different instances";
      std::vector<TaskId> permutation(
          static_cast<std::size_t>(graph.num_tasks()));
      std::iota(permutation.begin(), permutation.end(), 0);
      for (std::size_t i = permutation.size(); i > 1; --i) {
        std::swap(permutation[i - 1], permutation[rng.uniform_index(i)]);
      }
      EXPECT_EQ(base.key,
                canonicalize_instance(relabel(graph, permutation), topology,
                                      comm).key)
          << "random relabeling changed the canonical key";
      ++instances;
    }
  }
  EXPECT_EQ(instances, 24);
}

TEST(GraphHash, CacheKeySeedPolicyComposition) {
  const TaskGraph graph = diamond_graph();
  const CanonicalInstance instance = canonicalize_instance(
      graph, topo::hypercube(2), CommModel::paper_default());
  const std::string deterministic =
      instance_cache_key(instance, "heft(ranking=heft)", false, 7);
  EXPECT_EQ(deterministic,
            instance_cache_key(instance, "heft(ranking=heft)", false, 8))
      << "seed must not key deterministic policies";
  EXPECT_NE(instance_cache_key(instance, "gsa(chains=2)", true, 7),
            instance_cache_key(instance, "gsa(chains=2)", true, 8));
  EXPECT_NE(deterministic,
            instance_cache_key(instance, "heft(ranking=peft)", false, 7));
}

// ---------------------------------------------------------- plan cache

TEST(PlanCacheTest, LruEvictionAndPromotion) {
  PlanCache cache(2);
  PlanCache::Entry entry;
  entry.makespan = us(std::int64_t{100});
  cache.insert("a", entry);
  cache.insert("b", entry);
  ASSERT_TRUE(cache.lookup("a").has_value());  // promotes a over b
  cache.insert("c", entry);                    // evicts b, the LRU
  EXPECT_TRUE(cache.lookup("a").has_value());
  EXPECT_FALSE(cache.lookup("b").has_value());
  EXPECT_TRUE(cache.lookup("c").has_value());
  EXPECT_EQ(cache.size(), 2u);

  const service::PlanCacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits, 3);
  EXPECT_EQ(stats.misses, 1);
  EXPECT_EQ(stats.insertions, 3);
  EXPECT_EQ(stats.evictions, 1);
}

TEST(PlanCacheTest, ZeroCapacityDisables) {
  PlanCache cache(0);
  PlanCache::Entry entry;
  cache.insert("a", entry);
  EXPECT_FALSE(cache.lookup("a").has_value());
  EXPECT_EQ(cache.stats().misses, 0);
  EXPECT_EQ(cache.stats().insertions, 0);
}

// ---------------------------------------------------- admission control

TEST(Admission, QueueFullAndDeadlineRules) {
  service::ScheddOptions options;
  options.max_in_flight = 2;
  options.max_queue = 3;
  options.default_cost_ms = 0.0;

  EXPECT_TRUE(service::admit_request(0.0, 2, 100.0, options).admitted);
  const auto full = service::admit_request(0.0, 3, 0.0, options);
  EXPECT_FALSE(full.admitted);
  EXPECT_NE(full.reason.find("queue_full"), std::string::npos);

  // 100 ms of queued work over 2 workers = 50 ms expected wait: a 49 ms
  // budget is unmeetable, a 51 ms budget is fine, no budget never sheds.
  const auto late = service::admit_request(49.0, 1, 100.0, options);
  EXPECT_FALSE(late.admitted);
  EXPECT_NE(late.reason.find("deadline_unmeetable"), std::string::npos);
  EXPECT_TRUE(service::admit_request(51.0, 1, 100.0, options).admitted);
  EXPECT_TRUE(service::admit_request(0.0, 1, 100.0, options).admitted);
}

// -------------------------------------------------------- wire format

TEST(ServiceApi, RequestJsonRoundTrip) {
  ScheduleRequest request;
  request.id = "r1";
  request.graph = diamond_graph();
  request.topology = "ring:5";
  request.policy = "gsa(chains=4)";
  request.seed = 42;
  request.time_budget_ms = 12.5;
  request.priority = 3;
  request.comm.sigma = us(std::int64_t{7});

  const ScheduleRequest parsed =
      service::request_from_json_text(service::to_json(request));
  EXPECT_EQ(parsed.id, "r1");
  EXPECT_EQ(parsed.policy, "gsa(chains=4)");
  EXPECT_EQ(parsed.seed, 42u);
  EXPECT_DOUBLE_EQ(parsed.time_budget_ms, 12.5);
  EXPECT_EQ(parsed.priority, 3);
  EXPECT_EQ(parsed.topology, "ring:5");
  EXPECT_EQ(parsed.comm.sigma, us(std::int64_t{7}));
  EXPECT_EQ(parsed.graph.num_tasks(), 4);
  EXPECT_EQ(parsed.graph.duration(2), us(std::int64_t{300}));
  EXPECT_EQ(parsed.graph.task_name(3), "d");
  // Canonical form: a second round trip is byte-identical.
  EXPECT_EQ(service::to_json(request), service::to_json(parsed));
}

TEST(ServiceApi, RejectsMalformedRequests) {
  const auto message = [](const std::string& text) {
    try {
      service::request_from_json_text(text);
    } catch (const std::invalid_argument& error) {
      return std::string(error.what());
    }
    return std::string("<no throw>");
  };
  EXPECT_NE(message("{}").find("missing 'graph'"), std::string::npos);
  EXPECT_NE(message(R"({"graph":{"durations_us":[1]},"polcy":"sa"})")
                .find("no key 'polcy'"),
            std::string::npos);
  EXPECT_NE(message(R"({"graph":{"durations_us":[1],"durations_ns":[1]}})")
                .find("exactly one"),
            std::string::npos);
  EXPECT_NE(message(R"({"graph":{"durations_us":[]}})").find("no tasks"),
            std::string::npos);
  EXPECT_NE(
      message(R"({"graph":{"durations_us":[1,2],"edges":[[0,1]]}})")
          .find("[from, to, weight]"),
      std::string::npos);
  EXPECT_NE(
      message(R"({"graph":{"durations_us":[1,2],"edges":[[0,5,1]]}})")
          .find("out of range"),
      std::string::npos);
  EXPECT_NE(
      message(R"({"graph":{"durations_us":[1,2],"names":["only"]}})")
          .find("length differs"),
      std::string::npos);
  EXPECT_NE(message("[1,2]").find("must be a JSON object"),
            std::string::npos);
}

// ----------------------------------------------------- ScheduleService

TEST(ScheduleServiceTest, MissThenHitWithIdenticalPlan) {
  ScheduleService schedule_service(16);
  ScheduleRequest request;
  request.graph = diamond_graph();
  request.topology = "hypercube:2";
  request.policy = "heft";

  const ScheduleResponse first = schedule_service.serve(request);
  ASSERT_EQ(first.status, ResponseStatus::Ok);
  EXPECT_EQ(first.cache, CacheStatus::Miss);
  EXPECT_GT(first.makespan, 0);
  EXPECT_GT(first.predicted_makespan, 0);

  const ScheduleResponse second = schedule_service.serve(request);
  EXPECT_EQ(second.cache, CacheStatus::Hit);
  EXPECT_EQ(second.makespan, first.makespan);
  EXPECT_EQ(second.predicted_makespan, first.predicted_makespan);
  EXPECT_EQ(second.placement, first.placement);
  EXPECT_EQ(second.graph_hash, first.graph_hash);
}

TEST(ScheduleServiceTest, IsomorphicRequestHitsWithMappedPlan) {
  ScheduleService schedule_service(16);
  ScheduleRequest request;
  request.graph = diamond_graph();
  request.topology = "hypercube:2";
  request.policy = "heft";
  const ScheduleResponse first = schedule_service.serve(request);
  ASSERT_EQ(first.cache, CacheStatus::Miss);

  const std::vector<TaskId> permutation{2, 3, 0, 1};
  ScheduleRequest relabeled = request;
  relabeled.graph = relabel(request.graph, permutation);
  const ScheduleResponse second = schedule_service.serve(relabeled);
  ASSERT_EQ(second.status, ResponseStatus::Ok);
  EXPECT_EQ(second.cache, CacheStatus::Hit);
  EXPECT_EQ(second.makespan, first.makespan);
  EXPECT_EQ(second.graph_hash, first.graph_hash);
  // The cached canonical plan maps back through the permutation: task t
  // of the original is task permutation[t] of the relabeling.
  for (TaskId t = 0; t < request.graph.num_tasks(); ++t) {
    EXPECT_EQ(second.placement[static_cast<std::size_t>(
                  permutation[static_cast<std::size_t>(t)])],
              first.placement[static_cast<std::size_t>(t)]);
  }
}

TEST(ScheduleServiceTest, SeedKeysOnlyNondeterministicPolicies) {
  ScheduleService schedule_service(16);
  ScheduleRequest request;
  request.graph = diamond_graph();
  request.topology = "hypercube:2";

  request.policy = "heft";
  request.seed = 1;
  EXPECT_EQ(schedule_service.serve(request).cache, CacheStatus::Miss);
  request.seed = 99;  // deterministic policy: seed ignored by the key
  EXPECT_EQ(schedule_service.serve(request).cache, CacheStatus::Hit);

  request.policy = "gsa(max_steps=4,chains=1)";
  request.seed = 1;
  EXPECT_EQ(schedule_service.serve(request).cache, CacheStatus::Miss);
  request.seed = 2;  // rng policy: a new seed is a new plan
  EXPECT_EQ(schedule_service.serve(request).cache, CacheStatus::Miss);
  request.seed = 1;
  EXPECT_EQ(schedule_service.serve(request).cache, CacheStatus::Hit);
}

TEST(ScheduleServiceTest, TraceAndFaultRunsBypassTheCache) {
  ScheduleService schedule_service(16);
  ScheduleRequest request;
  request.graph = diamond_graph();
  request.topology = "hypercube:2";
  request.policy = "heft";
  schedule_service.serve(request);  // warm the cache

  ServeOptions options;
  options.record_trace = true;
  EXPECT_EQ(schedule_service.serve(request, options).cache,
            CacheStatus::Off);
  sim::FaultSpec faults;
  faults.machine_mtbf = us(std::int64_t{100000});
  faults.machine_mttr = us(std::int64_t{100});
  ServeOptions fault_options;
  fault_options.faults = &faults;
  EXPECT_EQ(schedule_service.serve(request, fault_options).cache,
            CacheStatus::Off);
}

TEST(ScheduleServiceTest, ErrorsAreStructuredOrPropagated) {
  ScheduleService schedule_service(0);
  ScheduleRequest request;
  request.graph = diamond_graph();
  request.policy = "no-such-policy";
  const ScheduleResponse response = schedule_service.serve(request);
  EXPECT_EQ(response.status, ResponseStatus::Error);
  EXPECT_NE(response.error.find("unknown policy"), std::string::npos);
  EXPECT_EQ(schedule_service.stats().errors, 1);

  ServeOptions options;
  options.propagate_errors = true;
  EXPECT_THROW(schedule_service.serve(request, options),
               std::invalid_argument);
}

// --------------------------------------------------------------- schedd

std::string run_daemon(const std::string& input,
                       const service::ScheddOptions& options,
                       std::string* trace_out = nullptr,
                       service::ScheddStats* stats_out = nullptr) {
  service::Schedd daemon(options);
  std::istringstream in(input);
  std::ostringstream out;
  std::ostringstream trace;
  EXPECT_EQ(daemon.run(in, out, trace_out != nullptr ? &trace : nullptr), 0);
  if (trace_out != nullptr) *trace_out = trace.str();
  if (stats_out != nullptr) *stats_out = daemon.stats();
  return out.str();
}

std::vector<std::string> lines_of(const std::string& text) {
  std::vector<std::string> lines;
  std::istringstream stream(text);
  std::string line;
  while (std::getline(stream, line)) lines.push_back(line);
  return lines;
}

const char* kDaemonScript =
    "{\"op\":\"list_policies\",\"id\":\"lp\"}\n"
    "{\"id\":\"one\",\"policy\":\"heft\",\"topology\":\"hypercube:2\","
    "\"graph\":{\"durations_us\":[100,200,50],\"edges\":[[0,1,5],[0,2,5]]}}"
    "\n"
    "{\"id\":\"two\",\"policy\":\"heft\",\"topology\":\"hypercube:2\","
    "\"graph\":{\"durations_us\":[100,200,50],\"edges\":[[0,1,5],[0,2,5]]}}"
    "\n"
    "not json at all\n"
    "{\"op\":\"stats\",\"id\":\"st\"}\n";

TEST(ScheddTest, OrderedResponsesCountersAndTrace) {
  service::ScheddOptions options;
  options.max_in_flight = 1;
  std::string trace;
  service::ScheddStats stats;
  const std::vector<std::string> lines =
      lines_of(run_daemon(kDaemonScript, options, &trace, &stats));

  ASSERT_EQ(lines.size(), 5u);  // responses in request order
  EXPECT_NE(lines[0].find("\"id\":\"lp\""), std::string::npos);
  EXPECT_NE(lines[0].find("\"name\":\"heft\""), std::string::npos);
  EXPECT_NE(lines[1].find("\"cache\":\"miss\""), std::string::npos);
  EXPECT_NE(lines[1].find("\"predicted_makespan_us\""), std::string::npos);
  EXPECT_NE(lines[2].find("\"cache\":\"hit\""), std::string::npos);
  EXPECT_NE(lines[3].find("\"status\":\"error\""), std::string::npos);
  EXPECT_NE(lines[4].find("\"received\":4,\"completed\":3,\"shed\":0,"
                          "\"errors\":1,\"cache_hits\":1,"
                          "\"cache_misses\":1"),
            std::string::npos);

  EXPECT_EQ(stats.received, 5);
  EXPECT_EQ(stats.completed, 4);  // lp + two schedules + the stats op
  EXPECT_EQ(stats.errors, 1);
  EXPECT_EQ(stats.cache_hits, 1);

  // The trace records arrival/start/finish per request plus the drain
  // summary, and a repeated run is byte-identical.
  EXPECT_NE(trace.find("\"event\":\"arrival\""), std::string::npos);
  EXPECT_NE(trace.find("\"event\":\"start\""), std::string::npos);
  EXPECT_NE(trace.find("\"event\":\"finish\""), std::string::npos);
  EXPECT_NE(trace.find("\"event\":\"drain\""), std::string::npos);
  std::string trace_again;
  run_daemon(kDaemonScript, options, &trace_again);
  EXPECT_EQ(trace, trace_again);
}

TEST(ScheddTest, ZeroQueueShedsWithStructuredReason) {
  service::ScheddOptions options;
  options.max_in_flight = 1;
  options.max_queue = 0;
  const std::string input =
      "{\"id\":\"a\",\"graph\":{\"durations_us\":[10]}}\n"
      "{\"id\":\"b\",\"graph\":{\"durations_us\":[10]}}\n";
  service::ScheddStats stats;
  const std::string output = run_daemon(input, options, nullptr, &stats);
  const std::vector<std::string> lines = lines_of(output);
  ASSERT_EQ(lines.size(), 2u);
  for (const std::string& line : lines) {
    EXPECT_NE(line.find("\"status\":\"shed\""), std::string::npos);
    EXPECT_NE(line.find("queue_full"), std::string::npos);
  }
  EXPECT_EQ(stats.shed, 2);
  EXPECT_EQ(stats.completed, 0);
}

TEST(ScheddTest, MultiWorkerStillEmitsInRequestOrder) {
  service::ScheddOptions options;
  options.max_in_flight = 4;
  options.cache_capacity = 0;
  std::string input;
  for (int i = 0; i < 8; ++i) {
    input += "{\"id\":\"r" + std::to_string(i) +
             "\",\"policy\":\"hlf\",\"topology\":\"hypercube:2\","
             "\"graph\":{\"durations_us\":[40,30,20,10],"
             "\"edges\":[[0,1,2],[0,2,2],[1,3,1]]}}\n";
  }
  const std::vector<std::string> lines =
      lines_of(run_daemon(input, options));
  ASSERT_EQ(lines.size(), 8u);
  for (int i = 0; i < 8; ++i) {
    EXPECT_NE(lines[static_cast<std::size_t>(i)].find(
                  "\"id\":\"r" + std::to_string(i) + "\""),
              std::string::npos)
        << "responses must come back in request order";
  }
}

}  // namespace
}  // namespace dagsched
