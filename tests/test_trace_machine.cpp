// Unit coverage for the trace query helpers and the raw machine state.

#include <gtest/gtest.h>

#include "sched/pinned.hpp"
#include "sim/engine.hpp"
#include "sim/machine.hpp"
#include "sim/trace.hpp"
#include "topology/builders.hpp"

namespace dagsched {
namespace {

TEST(Trace, CommKindNames) {
  EXPECT_EQ(sim::to_string(sim::CommKind::Send), "send");
  EXPECT_EQ(sim::to_string(sim::CommKind::Receive), "receive");
  EXPECT_EQ(sim::to_string(sim::CommKind::Route), "route");
}

TEST(Trace, TaskRecordLookup) {
  TaskGraph g;
  const TaskId a = g.add_task("a", us(std::int64_t{10}));
  const TaskId b = g.add_task("b", us(std::int64_t{20}));
  (void)b;
  sched::PinnedScheduler policy({0, 1});
  const Topology machine = topo::line(2);
  const sim::SimResult result =
      sim::simulate(g, machine, CommModel::disabled(), policy);
  EXPECT_EQ(result.trace.task_record(a).proc, 0);
  EXPECT_EQ(result.trace.task_record(a).finished, us(std::int64_t{10}));
  sim::Trace empty;
  EXPECT_THROW(empty.task_record(0), std::invalid_argument);
}

TEST(Trace, ProcBusyTimeSumsTaskAndCommHandling) {
  TaskGraph g;
  const TaskId a = g.add_task("a", us(std::int64_t{10}));
  const TaskId b = g.add_task("b", us(std::int64_t{10}));
  g.add_edge(a, b, us(std::int64_t{4}));
  sched::PinnedScheduler policy({0, 1});
  const Topology machine = topo::line(2);
  const sim::SimResult result =
      sim::simulate(g, machine, CommModel::paper_default(), policy);
  // P0: task 10 + sigma 7 = 17us; P1: receive 9 + task 10 = 19us.
  EXPECT_EQ(result.trace.proc_busy_time(0), us(std::int64_t{17}));
  EXPECT_EQ(result.trace.proc_busy_time(1), us(std::int64_t{19}));
  EXPECT_EQ(result.proc_busy[0], us(std::int64_t{17}));
  EXPECT_EQ(result.proc_busy[1], us(std::int64_t{19}));
}

TEST(Trace, SegmentsOfProcAreSorted) {
  TaskGraph g;
  for (int i = 0; i < 5; ++i) {
    g.add_task("t" + std::to_string(i), us(std::int64_t{10}));
  }
  sched::PinnedScheduler policy({0, 0, 0, 0, 0});
  const Topology machine = topo::line(1);
  const sim::SimResult result =
      sim::simulate(g, machine, CommModel::disabled(), policy);
  const auto segments = result.trace.segments_of_proc(0);
  ASSERT_EQ(segments.size(), 5u);
  for (std::size_t i = 1; i < segments.size(); ++i) {
    EXPECT_GE(segments[i].start, segments[i - 1].end);
  }
  EXPECT_TRUE(result.trace.segments_of_proc(0).size() == 5);
}

TEST(MachineState, IdleTracking) {
  const Topology machine = topo::line(3);
  sim::MachineState state(machine);
  EXPECT_EQ(state.num_procs(), 3);
  EXPECT_EQ(state.idle_procs(), (std::vector<ProcId>{0, 1, 2}));
  state.proc(1).reserved_task = 5;
  EXPECT_EQ(state.idle_procs(), (std::vector<ProcId>{0, 2}));
  state.proc(0).running_task = 7;
  EXPECT_EQ(state.idle_procs(), (std::vector<ProcId>{2}));
  // Accessor bounds are debug asserts now (engine hot path, PR 3); the
  // allocation-free idle_procs overload must agree with the allocating one.
  std::vector<ProcId> idle_buffer{99, 98};
  state.idle_procs(idle_buffer);
  EXPECT_EQ(idle_buffer, state.idle_procs());
  state.reset();
  EXPECT_EQ(state.idle_procs(), (std::vector<ProcId>{0, 1, 2}));
}

TEST(MachineState, CpuFreeSemantics) {
  sim::ProcessorState proc;
  EXPECT_TRUE(proc.cpu_free());
  EXPECT_TRUE(proc.idle_for_scheduling());
  proc.active_comm = sim::CommJob{sim::CommKind::Route, 0,
                                  us(std::int64_t{9})};
  EXPECT_FALSE(proc.cpu_free());
  EXPECT_TRUE(proc.idle_for_scheduling());  // routing != occupied
  proc.active_comm.reset();
  proc.running_task = 3;
  proc.task_executing = true;
  EXPECT_FALSE(proc.cpu_free());
  EXPECT_FALSE(proc.idle_for_scheduling());
}

}  // namespace
}  // namespace dagsched
