// Multi-chain global annealing: chain 0 must reproduce the historical
// single-chain annealer bit-for-bit, extra chains may only help, and the
// whole procedure stays deterministic per seed regardless of thread count.

#include <gtest/gtest.h>

#include <algorithm>

#include "core/global_annealer.hpp"
#include "graph/generators.hpp"
#include "sched/pinned.hpp"
#include "sim/engine.hpp"
#include "topology/builders.hpp"

namespace dagsched {
namespace {

// Golden values recorded from the pre-multi-chain (seed) implementation of
// anneal_global on this exact instance.  The simulator uses integer
// nanoseconds and the Rng is bit-reproducible, so these hold on every
// platform; if they ever change, the single-chain annealing sequence
// changed.
TEST(GlobalChains, SingleChainReproducesSeedImplementationBitForBit) {
  const TaskGraph g = gen::diamond(8, us(std::int64_t{5}),
                                   us(std::int64_t{15}),
                                   us(std::int64_t{5}),
                                   us(std::int64_t{4}));
  sa::GlobalAnnealOptions options;
  options.cooling.max_steps = 8;
  options.seed = 77;
  options.num_chains = 1;
  const sa::GlobalAnnealResult result = sa::anneal_global(
      g, topo::ring(4), CommModel::paper_default(), options);
  EXPECT_EQ(result.makespan, us(std::int64_t{124}));
  EXPECT_EQ(result.initial_makespan, us(std::int64_t{138}));
  EXPECT_EQ(result.simulations, 81);
  const std::vector<ProcId> expected{0, 0, 0, 1, 2, 3, 0, 3, 0, 0};
  EXPECT_EQ(result.mapping, expected);
  EXPECT_EQ(result.chains, 1);
}

TEST(GlobalChains, SingleChainRandomStartReproducesSeedImplementation) {
  const TaskGraph g = gen::chain(6, us(std::int64_t{10}),
                                 us(std::int64_t{4}));
  sa::GlobalAnnealOptions options;
  options.seed_with_hlf = false;
  options.cooling.max_steps = 15;
  options.seed = 5;
  options.num_chains = 1;
  const sa::GlobalAnnealResult result = sa::anneal_global(
      g, topo::line(3), CommModel::paper_default(), options);
  EXPECT_EQ(result.makespan, us(std::int64_t{80}));
  EXPECT_EQ(result.simulations, 121);
  const std::vector<ProcId> expected{2, 2, 1, 1, 1, 1};
  EXPECT_EQ(result.mapping, expected);
}

TEST(GlobalChains, MultiChainNeverWorseThanItsBestChain) {
  const TaskGraph g = gen::diamond(10, us(std::int64_t{5}),
                                   us(std::int64_t{18}),
                                   us(std::int64_t{5}),
                                   us(std::int64_t{6}));
  const Topology machine = topo::ring(4);
  const CommModel comm = CommModel::paper_default();
  sa::GlobalAnnealOptions options;
  options.cooling.max_steps = 10;
  options.num_chains = 3;
  const sa::GlobalAnnealResult result =
      sa::anneal_global(g, machine, comm, options);
  ASSERT_EQ(result.chains, 3);
  ASSERT_EQ(result.chain_makespans.size(), 3u);
  const Time best_chain = *std::min_element(result.chain_makespans.begin(),
                                            result.chain_makespans.end());
  EXPECT_EQ(result.makespan, best_chain);
  // The returned mapping replays to exactly the reported makespan.
  sched::PinnedScheduler replay(result.mapping);
  sim::SimOptions sim_options;
  sim_options.record_trace = false;
  EXPECT_EQ(sim::simulate(g, machine, comm, replay, sim_options).makespan,
            result.makespan);
}

TEST(GlobalChains, MultiChainMatchesSingleChainZero) {
  // Chain 0 of a multi-chain run is the single-chain run: the multi-chain
  // result can only improve on it, and its makespan appears as
  // chain_makespans[0].
  const TaskGraph g = gen::diamond(8, us(std::int64_t{4}),
                                   us(std::int64_t{12}),
                                   us(std::int64_t{4}),
                                   us(std::int64_t{5}));
  const Topology machine = topo::ring(4);
  const CommModel comm = CommModel::paper_default();
  sa::GlobalAnnealOptions options;
  options.cooling.max_steps = 8;
  options.seed = 9;

  options.num_chains = 1;
  const sa::GlobalAnnealResult single =
      sa::anneal_global(g, machine, comm, options);
  options.num_chains = 4;
  const sa::GlobalAnnealResult multi =
      sa::anneal_global(g, machine, comm, options);

  ASSERT_EQ(multi.chain_makespans.size(), 4u);
  EXPECT_EQ(multi.chain_makespans[0], single.makespan);
  EXPECT_LE(multi.makespan, single.makespan);
  EXPECT_EQ(multi.initial_makespan, single.initial_makespan);
  EXPECT_GT(multi.simulations, single.simulations);
}

TEST(GlobalChains, MultiChainIsDeterministicPerSeed) {
  const TaskGraph g = gen::diamond(8, us(std::int64_t{5}),
                                   us(std::int64_t{15}),
                                   us(std::int64_t{5}),
                                   us(std::int64_t{4}));
  sa::GlobalAnnealOptions options;
  options.cooling.max_steps = 8;
  options.seed = 77;
  options.num_chains = 3;
  const auto a = sa::anneal_global(g, topo::ring(4),
                                   CommModel::paper_default(), options);
  const auto b = sa::anneal_global(g, topo::ring(4),
                                   CommModel::paper_default(), options);
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.mapping, b.mapping);
  EXPECT_EQ(a.simulations, b.simulations);
  EXPECT_EQ(a.chain_makespans, b.chain_makespans);
}

TEST(GlobalChains, AutoChainCountIsUsable) {
  // num_chains = 0 resolves to a hardware-capped positive count.
  const TaskGraph g = gen::chain(5, us(std::int64_t{10}),
                                 us(std::int64_t{4}));
  sa::GlobalAnnealOptions options;
  options.cooling.max_steps = 6;
  options.num_chains = 0;
  const auto result = sa::anneal_global(g, topo::line(3),
                                        CommModel::paper_default(), options);
  EXPECT_GE(result.chains, 1);
  EXPECT_EQ(result.chain_makespans.size(),
            static_cast<std::size_t>(result.chains));
  EXPECT_LE(result.makespan, result.initial_makespan);
}

}  // namespace
}  // namespace dagsched
