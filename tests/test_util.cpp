// Time conversions, statistics, string helpers, table and CSV writers.

#include <gtest/gtest.h>

#include <clocale>
#include <cmath>
#include <cstdint>
#include <fstream>
#include <span>
#include <sstream>
#include <vector>

#include "util/csv.hpp"
#include "util/json.hpp"
#include "util/stats.hpp"
#include "util/string_util.hpp"
#include "util/table.hpp"
#include "util/time.hpp"

namespace dagsched {
namespace {

// --- time -------------------------------------------------------------------

TEST(TimeUnits, MicrosecondConversions) {
  EXPECT_EQ(us(std::int64_t{9}), 9000);
  EXPECT_EQ(us(9.12), 9120);
  EXPECT_EQ(us(0.001), 1);
  EXPECT_EQ(ms(std::int64_t{2}), 2000000);
  EXPECT_DOUBLE_EQ(to_us(9120), 9.12);
  EXPECT_DOUBLE_EQ(to_ms(1500000), 1.5);
}

TEST(TimeUnits, RoundTripPaperValues) {
  // Every value printed in the paper is an exact multiple of 1ns.
  for (const double v : {9.12, 84.77, 72.74, 73.96, 3.96, 6.85, 6.41, 7.21}) {
    EXPECT_DOUBLE_EQ(to_us(us(v)), v);
  }
}

TEST(TimeUnits, FormatTime) {
  EXPECT_EQ(format_time(us(std::int64_t{4})), "4.00us");
  EXPECT_EQ(format_time(us(9.12)), "9.12us");
  EXPECT_EQ(format_time(500), "500ns");
  EXPECT_EQ(format_time(ms(std::int64_t{2})), "2.000ms");
  EXPECT_EQ(format_time(kTimeInfinity), "inf");
  EXPECT_EQ(format_time(0), "0.00us");
}

// --- stats ------------------------------------------------------------------

TEST(Stats, RunningStatsBasics) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  s.add(2.0);
  s.add(4.0);
  s.add(6.0);
  EXPECT_EQ(s.count(), 3u);
  EXPECT_DOUBLE_EQ(s.mean(), 4.0);
  EXPECT_DOUBLE_EQ(s.variance(), 4.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 6.0);
}

TEST(Stats, SingleSampleHasZeroVariance) {
  RunningStats s;
  s.add(5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 5.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
}

TEST(Stats, SummarizeAndQuantiles) {
  const std::vector<double> values = {5.0, 1.0, 3.0, 2.0, 4.0};
  const Summary s = summarize(values);
  EXPECT_EQ(s.count, 5u);
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  EXPECT_DOUBLE_EQ(s.median, 3.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 5.0);
  EXPECT_DOUBLE_EQ(quantile(values, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(values, 1.0), 5.0);
  EXPECT_DOUBLE_EQ(quantile(values, 0.25), 2.0);
}

TEST(Stats, EmptyInputsAreSafe) {
  const std::vector<double> empty;
  EXPECT_DOUBLE_EQ(mean(empty), 0.0);
  EXPECT_EQ(summarize(empty).count, 0u);
  EXPECT_DOUBLE_EQ(quantile(empty, 0.5), 0.0);
}

TEST(Stats, QuantileRejectsBadQ) {
  const std::vector<double> values = {1.0};
  EXPECT_THROW(quantile(values, -0.1), std::invalid_argument);
  EXPECT_THROW(quantile(values, 1.1), std::invalid_argument);
}

TEST(Stats, NearestRankPercentileHandComputedCases) {
  // Nearest-rank picks the ceil(p/100 * n)-th smallest element, 1-based.
  const std::vector<std::int64_t> one = {42};
  EXPECT_EQ(percentile_nearest_rank(std::span<const std::int64_t>(one), 99),
            42);
  EXPECT_EQ(percentile_nearest_rank(std::span<const std::int64_t>(one), 1),
            42);

  // n = 4: p50 rank = ceil(2.0) = 2 -> 20; p99 rank = ceil(3.96) = 4 -> 40.
  const std::vector<std::int64_t> four = {10, 20, 30, 40};
  const std::span<const std::int64_t> four_span(four);
  EXPECT_EQ(percentile_nearest_rank(four_span, 50), 20);
  EXPECT_EQ(percentile_nearest_rank(four_span, 99), 40);
  EXPECT_EQ(percentile_nearest_rank(four_span, 100), 40);

  // n = 100: p99 rank = 99 exactly -> the second-largest element.
  std::vector<std::int64_t> hundred(100);
  for (int i = 0; i < 100; ++i) hundred[i] = i + 1;
  EXPECT_EQ(
      percentile_nearest_rank(std::span<const std::int64_t>(hundred), 99),
      99);

  // n = 101: p99 rank = ceil(99.99) = 100 -> the second-largest again.
  std::vector<std::int64_t> hundred_one(101);
  for (int i = 0; i < 101; ++i) hundred_one[i] = i + 1;
  EXPECT_EQ(percentile_nearest_rank(
                std::span<const std::int64_t>(hundred_one), 99),
            100);

  // Works for doubles too, and always returns an element of the input.
  const std::vector<double> doubles = {1.5, 2.5, 3.5};
  EXPECT_DOUBLE_EQ(
      percentile_nearest_rank(std::span<const double>(doubles), 50), 2.5);
}

TEST(Stats, NearestRankPercentileDisagreesWithQuantileBySmallSampleDesign) {
  // The two percentile definitions the codebase uses, side by side: the
  // online p99 (nearest rank, an actual sample) vs the sweep summary's
  // quantile() (Hyndman-Fan type 7 interpolation).  On {10,20,30,40} the
  // median differs: 20 (rank 2) vs 25 (interpolated).
  const std::vector<double> four = {10.0, 20.0, 30.0, 40.0};
  EXPECT_DOUBLE_EQ(
      percentile_nearest_rank(std::span<const double>(four), 50), 20.0);
  EXPECT_DOUBLE_EQ(quantile(four, 0.5), 25.0);
}

TEST(Stats, NearestRankPercentileRejectsEmptyAndBadPercent) {
  // An empty input must throw instead of underflowing the 1-based rank
  // (the regression behind compute_online_metrics' explicit sentinel).
  const std::vector<std::int64_t> empty;
  EXPECT_THROW(
      percentile_nearest_rank(std::span<const std::int64_t>(empty), 99),
      std::invalid_argument);
  const std::vector<std::int64_t> one = {1};
  const std::span<const std::int64_t> one_span(one);
  EXPECT_THROW(percentile_nearest_rank(one_span, 0), std::invalid_argument);
  EXPECT_THROW(percentile_nearest_rank(one_span, 101),
               std::invalid_argument);
}

TEST(Stats, RelativeDifference) {
  EXPECT_DOUBLE_EQ(relative_difference(10.0, 10.0), 0.0);
  EXPECT_NEAR(relative_difference(9.0, 10.0), 0.1, 1e-12);
  EXPECT_NEAR(relative_difference(0.0, 0.0), 0.0, 1e-12);
}

// --- string helpers ---------------------------------------------------------

TEST(StringUtil, FormatFixed) {
  EXPECT_EQ(format_fixed(3.14159, 2), "3.14");
  EXPECT_EQ(format_fixed(2.0, 0), "2");
  EXPECT_EQ(format_percent(43.02), "43.0%");
}

TEST(StringUtil, FormatFixedGoldenBytes) {
  // Pinned artifact bytes: every golden (sweep summary JSON, CSV, shard
  // artifacts) renders doubles through format_fixed, so these exact
  // strings are load-bearing.
  EXPECT_EQ(format_fixed(1.005, 2), "1.00");  // exact binary is 1.00499...
  EXPECT_EQ(format_fixed(-0.125, 3), "-0.125");
  EXPECT_EQ(format_fixed(12345.6789, 4), "12345.6789");
  EXPECT_EQ(format_fixed(0.0, 6), "0.000000");
  EXPECT_EQ(format_fixed(1e9, 1), "1000000000.0");
}

TEST(StringUtil, FormatFixedIsLocaleIndependent) {
  // The documented contract is locale-independent decimals, but %f spells
  // the decimal point per LC_NUMERIC.  Under a comma-decimal locale the
  // bytes must still come out as "1.50".  Containers often ship only the
  // C locale; skip (don't vacuously pass) when no comma locale exists.
  const char* previous = std::setlocale(LC_NUMERIC, nullptr);
  const std::string saved = previous ? previous : "C";
  const char* comma_locale = nullptr;
  for (const char* candidate :
       {"de_DE.UTF-8", "de_DE.utf8", "de_DE", "fr_FR.UTF-8", "fr_FR.utf8"}) {
    if (std::setlocale(LC_NUMERIC, candidate) != nullptr) {
      comma_locale = candidate;
      break;
    }
  }
  if (comma_locale == nullptr) {
    std::setlocale(LC_NUMERIC, saved.c_str());
    GTEST_SKIP() << "no comma-decimal locale installed";
  }
  const std::string bytes = format_fixed(1.5, 2);
  const std::string percent = format_percent(12.5, 1);
  std::setlocale(LC_NUMERIC, saved.c_str());
  EXPECT_EQ(bytes, "1.50");
  EXPECT_EQ(percent, "12.5%");
}

TEST(StringUtil, SplitKeepsEmptyFields) {
  const auto fields = split("a,,b,", ',');
  ASSERT_EQ(fields.size(), 4u);
  EXPECT_EQ(fields[0], "a");
  EXPECT_EQ(fields[1], "");
  EXPECT_EQ(fields[2], "b");
  EXPECT_EQ(fields[3], "");
}

TEST(StringUtil, Trim) {
  EXPECT_EQ(trim("  hello \t"), "hello");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim(" \n "), "");
  EXPECT_EQ(trim("x"), "x");
}

TEST(StringUtil, Padding) {
  EXPECT_EQ(pad_left("ab", 4), "  ab");
  EXPECT_EQ(pad_right("ab", 4), "ab  ");
  EXPECT_EQ(pad_left("abcdef", 4), "abcdef");  // no truncation
}

TEST(StringUtil, StartsWith) {
  EXPECT_TRUE(starts_with("taskgraph x", "taskgraph"));
  EXPECT_FALSE(starts_with("task", "taskgraph"));
}

// --- table writer -----------------------------------------------------------

TEST(TableWriter, RendersAlignedColumns) {
  TableWriter t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "22"});
  const std::string rendered = t.render();
  // Default alignment: first column left, the rest right.
  EXPECT_NE(rendered.find("| alpha |     1 |"), std::string::npos);
  EXPECT_NE(rendered.find("| b     |    22 |"), std::string::npos);
  EXPECT_NE(rendered.find("+-------+"), std::string::npos);
  // Explicit alignment override flips the first column.
  t.set_alignment({Align::Right, Align::Left});
  const std::string flipped = t.render();
  EXPECT_NE(flipped.find("|     b | 22    |"), std::string::npos);
}

TEST(TableWriter, RejectsWrongColumnCount) {
  TableWriter t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
  EXPECT_THROW(t.set_alignment({Align::Left}), std::invalid_argument);
}

TEST(TableWriter, RuleRows) {
  TableWriter t({"x"});
  t.add_row({"1"});
  t.add_rule();
  t.add_row({"2"});
  const std::string rendered = t.render();
  // header rule + inner rule + trailing rule + top = 4 dashes lines.
  int rules = 0;
  std::istringstream stream(rendered);
  std::string line;
  while (std::getline(stream, line)) {
    if (!line.empty() && line[0] == '+') ++rules;
  }
  EXPECT_EQ(rules, 4);
}

TEST(TableWriter, StreamsViaOperator) {
  TableWriter t({"c"});
  t.add_row({"v"});
  std::ostringstream out;
  out << t;
  EXPECT_EQ(out.str(), t.render());
}

// --- csv --------------------------------------------------------------------

TEST(Csv, EscapesSpecialCharacters) {
  EXPECT_EQ(csv_escape("plain"), "plain");
  EXPECT_EQ(csv_escape("a,b"), "\"a,b\"");
  EXPECT_EQ(csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(csv_escape("line\nbreak"), "\"line\nbreak\"");
}

TEST(Csv, RendersHeaderAndRows) {
  CsvWriter csv({"a", "b"});
  csv.add_row({"1", "x,y"});
  EXPECT_EQ(csv.render(), "a,b\n1,\"x,y\"\n");
  EXPECT_EQ(csv.num_rows(), 1u);
}

TEST(Csv, RejectsWrongColumnCount) {
  CsvWriter csv({"a", "b"});
  EXPECT_THROW(csv.add_row({"1"}), std::invalid_argument);
}

TEST(Stats, SignTestHandComputedCases) {
  // Empty sample: no evidence.
  EXPECT_DOUBLE_EQ(sign_test(0, 0).p_value, 1.0);
  EXPECT_EQ(sign_test(0, 0).n, 0);

  // 5 wins, 0 losses: p = 2 * (1/2)^5 = 0.0625 exactly.
  const SignTest five = sign_test(5, 0);
  EXPECT_EQ(five.n, 5);
  EXPECT_DOUBLE_EQ(five.p_value, 0.0625);
  // Symmetric in the direction.
  EXPECT_DOUBLE_EQ(sign_test(0, 5).p_value, 0.0625);

  // 4 vs 1: p = 2 * (C(5,0) + C(5,1)) / 2^5 = 2 * 6/32 = 0.375.
  EXPECT_DOUBLE_EQ(sign_test(4, 1).p_value, 0.375);

  // Dead even: the two-sided tail overshoots 1 and must be capped.
  EXPECT_DOUBLE_EQ(sign_test(3, 3).p_value, 1.0);

  // 8 vs 2: p = 2 * (1 + 10 + 45) / 1024 = 0.109375.
  EXPECT_DOUBLE_EQ(sign_test(8, 2).p_value, 0.109375);

  // Monotone: more lopsided counts at the same n give smaller p.
  EXPECT_LT(sign_test(9, 1).p_value, sign_test(8, 2).p_value);
  EXPECT_LT(sign_test(10, 0).p_value, sign_test(9, 1).p_value);

  // Large-sample branch (n > 1000 switches to the normal approximation):
  // still sane, monotone and in (0, 1].
  const double even = sign_test(1001, 1001).p_value;
  const double skew = sign_test(1200, 802).p_value;
  EXPECT_GT(even, 0.9);
  EXPECT_LE(even, 1.0);
  EXPECT_LT(skew, 0.001);
  EXPECT_GT(skew, 0.0);
}

TEST(Stats, WilcoxonHandComputedCases) {
  // Empty / all-zero samples: no evidence.
  EXPECT_DOUBLE_EQ(wilcoxon_signed_rank({}).p_value, 1.0);
  const std::vector<double> zeros = {0.0, 0.0};
  EXPECT_DOUBLE_EQ(wilcoxon_signed_rank(zeros).p_value, 1.0);
  EXPECT_EQ(wilcoxon_signed_rank(zeros).n, 0);

  // Distinct magnitudes {1, -2, 3, 4, 5}: ranks are 1..5 by magnitude,
  // W+ = 1 + 3 + 4 + 5 = 13, W- = 2.  With n = 5 <= 25 the p-value is
  // the exact permutation tail: of the 2^5 = 32 sign assignments of the
  // ranks, the subsets summing to >= 13 are {1,3,4,5}, {2,3,4,5} and
  // {1,2,3,4,5} — so P(W+ >= 13) = 3/32 and p = 2 * 3/32 = 0.1875.
  const std::vector<double> diffs = {1.0, -2.0, 3.0, 4.0, 5.0};
  const WilcoxonTest test = wilcoxon_signed_rank(diffs);
  EXPECT_EQ(test.n, 5);
  EXPECT_DOUBLE_EQ(test.w_plus, 13.0);
  EXPECT_DOUBLE_EQ(test.w_minus, 2.0);
  EXPECT_TRUE(test.exact);
  EXPECT_DOUBLE_EQ(test.p_value, 0.1875);
  // The z deviate is still reported for reference:
  // mu = 7.5, var = 13.75; z = (13 - 7.5 - 0.5) / sqrt(13.75).
  EXPECT_NEAR(test.z, 5.0 / std::sqrt(13.75), 1e-12);

  // Ties get mid-ranks: {1, 1, -1, 2} -> |d| ranks (2, 2, 2, 4);
  // W+ = 2 + 2 + 4 = 8, W- = 2.  Exact over the 16 assignments of
  // doubled ranks {4, 4, 4, 8}: the doubled-W+ counts are
  // {0:1, 4:3, 8:4, 12:4, 16:3, 20:1}, the observed doubled W+ is 16, so
  // P(W+ >= 8) = 4/16 and p = 2 * 4/16 = 0.5.
  const std::vector<double> tied = {1.0, 1.0, -1.0, 2.0};
  const WilcoxonTest tied_test = wilcoxon_signed_rank(tied);
  EXPECT_EQ(tied_test.n, 4);
  EXPECT_DOUBLE_EQ(tied_test.w_plus, 8.0);
  EXPECT_DOUBLE_EQ(tied_test.w_minus, 2.0);
  EXPECT_TRUE(tied_test.exact);
  EXPECT_DOUBLE_EQ(tied_test.p_value, 0.5);
  // Tie-corrected z: mu = 5, var = 7.5 - 24/48 = 7.0.
  EXPECT_NEAR(tied_test.z, 2.5 / std::sqrt(7.0), 1e-12);

  // Zeros are dropped before ranking: {0, 3, -1} behaves like {3, -1}.
  const std::vector<double> with_zero = {0.0, 3.0, -1.0};
  const std::vector<double> without_zero = {3.0, -1.0};
  EXPECT_DOUBLE_EQ(wilcoxon_signed_rank(with_zero).p_value,
                   wilcoxon_signed_rank(without_zero).p_value);
  EXPECT_EQ(wilcoxon_signed_rank(with_zero).n, 2);

  // Direction symmetry: flipping every sign swaps W+ and W- but keeps p
  // (the permutation distribution is symmetric).
  std::vector<double> flipped = diffs;
  for (double& d : flipped) d = -d;
  const WilcoxonTest mirror = wilcoxon_signed_rank(flipped);
  EXPECT_DOUBLE_EQ(mirror.w_plus, test.w_minus);
  EXPECT_DOUBLE_EQ(mirror.w_minus, test.w_plus);
  EXPECT_DOUBLE_EQ(mirror.p_value, test.p_value);

  // All-positive distinct ranks: the one-sided tail is exactly one
  // assignment, so p = 2 / 2^n.
  const std::vector<double> one_sided = {1.0, 2.0, 3.0, 4.0, 5.0,
                                         6.0, 7.0, 8.0, 9.0, 10.0};
  EXPECT_DOUBLE_EQ(wilcoxon_signed_rank(one_sided).p_value, 2.0 / 1024.0);
  const std::vector<double> balanced = {1.0, -1.5, 2.0, -2.5, 3.0, -3.5};
  EXPECT_GT(wilcoxon_signed_rank(balanced).p_value, 0.5);
}

TEST(Stats, WilcoxonExactCutoffAndNormalTail) {
  // n = kWilcoxonExactMax stays exact; one more sample switches to the
  // normal approximation, and the two agree closely at the boundary.
  std::vector<double> diffs;
  for (int i = 1; i <= kWilcoxonExactMax; ++i) {
    diffs.push_back(i % 3 == 0 ? -static_cast<double>(i)
                               : static_cast<double>(i));
  }
  const WilcoxonTest at_cutoff = wilcoxon_signed_rank(diffs);
  EXPECT_EQ(at_cutoff.n, kWilcoxonExactMax);
  EXPECT_TRUE(at_cutoff.exact);

  diffs.push_back(26.0);
  const WilcoxonTest beyond = wilcoxon_signed_rank(diffs);
  EXPECT_EQ(beyond.n, kWilcoxonExactMax + 1);
  EXPECT_FALSE(beyond.exact);
  EXPECT_GT(beyond.p_value, 0.0);
  EXPECT_LE(beyond.p_value, 1.0);
  EXPECT_NEAR(beyond.p_value, at_cutoff.p_value, 0.1);

  // Cross-check the exact tail against the normal approximation on a
  // moderately sized sample: they must agree to a few percent.
  std::vector<double> wide;
  for (int i = 1; i <= 20; ++i) {
    wide.push_back(i % 4 == 0 ? -static_cast<double>(i)
                              : static_cast<double>(i));
  }
  const WilcoxonTest exact_test = wilcoxon_signed_rank(wide);
  ASSERT_TRUE(exact_test.exact);
  const double normal_p =
      std::erfc(std::fabs(exact_test.z) / std::sqrt(2.0));
  EXPECT_NEAR(exact_test.p_value, normal_p, 0.02);
}

TEST(Stats, HolmBonferroniHandComputedCases) {
  // Classic worked example: sorted p (.005, .01, .03, .04) scale by
  // (4, 3, 2, 1) -> (.02, .03, .06, .04); the running max makes the last
  // step .06.  Results are returned in the input's order.
  const std::vector<double> p = {0.01, 0.04, 0.03, 0.005};
  const std::vector<double> adjusted = holm_bonferroni(p);
  ASSERT_EQ(adjusted.size(), 4u);
  EXPECT_DOUBLE_EQ(adjusted[0], 0.03);
  EXPECT_DOUBLE_EQ(adjusted[1], 0.06);
  EXPECT_DOUBLE_EQ(adjusted[2], 0.06);
  EXPECT_DOUBLE_EQ(adjusted[3], 0.02);

  // Adjusted values never shrink below the raw ones and cap at 1.
  const std::vector<double> large = {0.6, 0.5, 0.9};
  const std::vector<double> capped = holm_bonferroni(large);
  for (std::size_t i = 0; i < large.size(); ++i) {
    EXPECT_GE(capped[i], large[i]);
    EXPECT_LE(capped[i], 1.0);
  }
  EXPECT_DOUBLE_EQ(capped[2], 1.0);

  // A single test needs no correction; the empty family is empty.
  EXPECT_DOUBLE_EQ(holm_bonferroni(std::vector<double>{0.2})[0], 0.2);
  EXPECT_TRUE(holm_bonferroni({}).empty());

  // Monotone: the adjustment preserves the ordering of the raw p-values.
  const std::vector<double> raw = {0.001, 0.2, 0.05, 0.012};
  const std::vector<double> adj = holm_bonferroni(raw);
  EXPECT_LE(adj[0], adj[3]);
  EXPECT_LE(adj[3], adj[2]);
  EXPECT_LE(adj[2], adj[1]);
}

TEST(Csv, WritesFile) {
  CsvWriter csv({"k", "v"});
  csv.add_row({"x", "1"});
  const std::string path = ::testing::TempDir() + "/dagsched_csv_test.csv";
  ASSERT_TRUE(csv.write_file(path));
  std::ifstream in(path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  EXPECT_EQ(buffer.str(), "k,v\nx,1\n");
}

// --- json -------------------------------------------------------------------

TEST(JsonParse, ValuesAndExactIntegers) {
  const JsonValue doc = parse_json(
      R"({"name":"x \"quoted\"","n":-42,"big":9007199254740993,)"
      R"("pi":3.25,"flag":true,"nothing":null,"list":[1,[2,3],{}]})");
  ASSERT_EQ(doc.kind(), JsonValue::Kind::Object);
  EXPECT_EQ(doc.find("name")->as_string(), "x \"quoted\"");
  EXPECT_EQ(doc.find("n")->as_int64(), -42);
  // Past 2^53 a double round-trip would corrupt the value; the parser
  // keeps the raw token so integers stay exact.
  EXPECT_EQ(doc.find("big")->as_int64(), 9007199254740993LL);
  EXPECT_DOUBLE_EQ(doc.find("pi")->as_double(), 3.25);
  EXPECT_TRUE(doc.find("flag")->as_bool());
  EXPECT_EQ(doc.find("nothing")->kind(), JsonValue::Kind::Null);
  EXPECT_EQ(doc.find("missing"), nullptr);
  const JsonValue& list = *doc.find("list");
  ASSERT_EQ(list.items().size(), 3u);
  EXPECT_EQ(list.items()[1].items()[1].as_int64(), 3);
  EXPECT_EQ(list.items()[2].kind(), JsonValue::Kind::Object);
}

TEST(JsonParse, UnicodeEscapesAndErrors) {
  // 2-byte UTF-8 (U+00E9) and a surrogate pair (U+1F600, 4-byte UTF-8).
  const std::string escaped =
      std::string("\"a\\u00e9\\ud83d\\ude00b\"");
  EXPECT_EQ(parse_json(escaped).as_string(),
            "a\xc3\xa9\xf0\x9f\x98\x80"
            "b");
  EXPECT_EQ(parse_json("\"\\n\\t\\\\\\\"\\/\"").as_string(), "\n\t\\\"/");
  EXPECT_THROW(parse_json(""), std::invalid_argument);
  EXPECT_THROW(parse_json("{\"a\":1,}"), std::invalid_argument);
  EXPECT_THROW(parse_json("{\"a\":1} trailing"), std::invalid_argument);
  EXPECT_THROW(parse_json("nul"), std::invalid_argument);
  EXPECT_THROW(parse_json("[1,2"), std::invalid_argument);
  EXPECT_THROW(parse_json("123."), std::invalid_argument);
  EXPECT_THROW(parse_json(std::string(70, '[') + std::string(70, ']')),
               std::invalid_argument);  // depth cap
  // Type confusion is rejected, not coerced.
  EXPECT_THROW(parse_json("\"5\"").as_int64(), std::invalid_argument);
  EXPECT_THROW(parse_json("1.5").as_int64(), std::invalid_argument);
  EXPECT_THROW(parse_json("-1").as_uint64(), std::invalid_argument);
}

TEST(JsonWriterStyles, CompactIsSingleLinePrettyUnchanged) {
  const auto build = [](JsonWriter& writer) {
    writer.begin_object();
    writer.key("a");
    writer.value(1);
    writer.key("b");
    writer.begin_array();
    writer.value("x");
    writer.end_array();
    writer.end_object();
  };
  JsonWriter compact(3, JsonWriter::Style::Compact);
  build(compact);
  EXPECT_EQ(compact.str(), "{\"a\":1,\"b\":[\"x\"]}");
  JsonWriter pretty(3);
  build(pretty);
  EXPECT_EQ(pretty.str(), "{\n  \"a\": 1,\n  \"b\": [\n    \"x\"\n  ]\n}\n");
}

}  // namespace
}  // namespace dagsched
