// The SA scheduler as an online policy: packet statistics, trajectories,
// determinism, and behavioural guarantees vs HLF.

#include <gtest/gtest.h>

#include "core/sa_scheduler.hpp"
#include "graph/analysis.hpp"
#include "graph/generators.hpp"
#include "sched/hlf.hpp"
#include "sim/engine.hpp"
#include "schedule_checks.hpp"
#include "topology/builders.hpp"
#include "workloads/registry.hpp"

namespace dagsched {
namespace {

TEST(SaScheduler, StatsCoverEveryPacket) {
  const workloads::Workload w = workloads::by_name("NE");
  sa::SaScheduler scheduler;
  const sim::SimResult result = sim::simulate(
      w.graph, topo::hypercube(3), CommModel::paper_default(), scheduler);
  const sa::SaRunStats& stats = scheduler.stats();
  EXPECT_EQ(stats.packets, result.num_epochs);
  EXPECT_GT(stats.total_candidates, 0);
  EXPECT_GT(stats.total_iterations, 0);
  EXPECT_GE(stats.mean_candidates(), 1.0);
  EXPECT_GE(stats.mean_idle_procs(), 1.0);
}

TEST(SaScheduler, StatsResetBetweenRuns) {
  const workloads::Workload w = workloads::by_name("FFT");
  sa::SaScheduler scheduler;
  sim::simulate(w.graph, topo::ring(9), CommModel::paper_default(),
                scheduler);
  const int packets_first = scheduler.stats().packets;
  sim::simulate(w.graph, topo::ring(9), CommModel::paper_default(),
                scheduler);
  EXPECT_EQ(scheduler.stats().packets, packets_first);
}

TEST(SaScheduler, TrajectoriesOnlyWhenRequested) {
  const workloads::Workload w = workloads::by_name("FFT");
  {
    sa::SaScheduler scheduler;
    sim::simulate(w.graph, topo::hypercube(3), CommModel::paper_default(),
                  scheduler);
    EXPECT_TRUE(scheduler.trajectories().empty());
  }
  {
    sa::SaSchedulerOptions options;
    options.record_trajectories = true;
    sa::SaScheduler scheduler(options);
    const sim::SimResult result = sim::simulate(
        w.graph, topo::hypercube(3), CommModel::paper_default(), scheduler);
    EXPECT_EQ(static_cast<int>(scheduler.trajectories().size()),
              result.num_epochs);
    // The first packet (72 candidates... after setup completes) must have
    // recorded points.
    bool some_points = false;
    for (const sa::PacketTrajectory& t : scheduler.trajectories()) {
      if (!t.points.empty()) some_points = true;
    }
    EXPECT_TRUE(some_points);
  }
}

TEST(SaScheduler, SeedChangesSchedule) {
  const workloads::Workload w = workloads::by_name("MM");
  const Topology topology = topo::ring(9);
  const CommModel comm = CommModel::paper_default();
  sa::SaSchedulerOptions a_options;
  a_options.seed = 1;
  a_options.anneal.init = sa::InitKind::Random;
  sa::SaSchedulerOptions b_options = a_options;
  b_options.seed = 2;
  sa::SaScheduler a(a_options);
  sa::SaScheduler b(b_options);
  const auto ra = sim::simulate(w.graph, topology, comm, a);
  const auto rb = sim::simulate(w.graph, topology, comm, b);
  EXPECT_NE(ra.placement, rb.placement);  // overwhelmingly likely
}

TEST(SaScheduler, MatchesHlfSpeedupWithoutComm) {
  // Without communication the SA cost degenerates to the level term, and
  // the schedule quality must match HLF (paper: "the same or slightly
  // better").
  for (const char* name : {"NE", "GJ", "FFT", "MM"}) {
    const workloads::Workload w = workloads::by_name(name);
    const Topology topology = topo::hypercube(3);
    const CommModel comm = CommModel::disabled();
    sched::HlfScheduler hlf;
    sa::SaScheduler annealer;
    const Time hlf_makespan =
        sim::simulate(w.graph, topology, comm, hlf).makespan;
    const Time sa_makespan =
        sim::simulate(w.graph, topology, comm, annealer).makespan;
    // Within 2% either way (tie-breaking differences only).
    EXPECT_NEAR(static_cast<double>(sa_makespan),
                static_cast<double>(hlf_makespan),
                0.02 * static_cast<double>(hlf_makespan))
        << name;
  }
}

TEST(SaScheduler, BeatsHlfWithCommOnEveryPaperProgram) {
  // The paper's headline claim (Table 2): with communication enabled SA
  // outperforms HLF on all four programs.  Best-of-3 seeds vs the
  // deterministic baseline, hypercube.
  for (const char* name : {"NE", "GJ", "FFT", "MM"}) {
    const workloads::Workload w = workloads::by_name(name);
    const Topology topology = topo::hypercube(3);
    const CommModel comm = CommModel::paper_default();
    sched::HlfScheduler hlf;
    const Time hlf_makespan =
        sim::simulate(w.graph, topology, comm, hlf).makespan;
    Time best_sa = kTimeInfinity;
    for (std::uint64_t seed = 1; seed <= 3; ++seed) {
      sa::SaSchedulerOptions options;
      options.seed = seed;
      sa::SaScheduler annealer(options);
      best_sa = std::min(
          best_sa,
          sim::simulate(w.graph, topology, comm, annealer).makespan);
    }
    EXPECT_LT(best_sa, hlf_makespan) << name;
  }
}

TEST(SaScheduler, SolvesGrahamAnomalyOptimally) {
  // §6b: "the SA algorithm is able to optimally solve the Graham list
  // scheduling anomalies."  On the reduced instance the optimum is the
  // critical path (10 units).
  const TaskGraph graph = gen::graham_anomaly(true);
  const Time optimum = critical_path(graph).length;
  Time best = kTimeInfinity;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    sa::SaSchedulerOptions options;
    options.seed = seed;
    sa::SaScheduler annealer(options);
    best = std::min(best, sim::simulate(graph, topo::complete(3),
                                        CommModel::disabled(), annealer)
                              .makespan);
  }
  EXPECT_EQ(best, optimum);
}

TEST(SaScheduler, ExploitsLocalityOnChains) {
  // Two long chains on two processors: SA with communication must keep
  // each chain on one processor (zero or near-zero messages), which HLF's
  // placement-oblivious rule does not guarantee on a ring.
  TaskGraph g("two_chains");
  TaskId prev_a = g.add_task("a0", us(std::int64_t{10}));
  TaskId prev_b = g.add_task("b0", us(std::int64_t{10}));
  for (int i = 1; i < 10; ++i) {
    const TaskId a = g.add_task("a" + std::to_string(i),
                                us(std::int64_t{10}));
    g.add_edge(prev_a, a, us(std::int64_t{8}));
    prev_a = a;
    const TaskId b = g.add_task("b" + std::to_string(i),
                                us(std::int64_t{10}));
    g.add_edge(prev_b, b, us(std::int64_t{8}));
    prev_b = b;
  }
  const Topology topology = topo::ring(4);
  const CommModel comm = CommModel::paper_default();
  Time best_sa = kTimeInfinity;
  int best_messages = 1 << 30;
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    sa::SaSchedulerOptions options;
    options.seed = seed;
    sa::SaScheduler annealer(options);
    const auto result = sim::simulate(g, topology, comm, annealer);
    if (result.makespan < best_sa) {
      best_sa = result.makespan;
      best_messages = result.num_messages;
    }
  }
  // Perfect locality: 100us per chain in parallel, no messages.
  EXPECT_EQ(best_messages, 0);
  EXPECT_EQ(best_sa, us(std::int64_t{100}));
}

TEST(SaScheduler, WeightExtremesStillProduceValidSchedules) {
  const workloads::Workload w = workloads::by_name("GJ");
  const Topology topology = topo::bus(8);
  const CommModel comm = CommModel::paper_default();
  for (const double wc : {0.0, 1.0}) {
    sa::SaSchedulerOptions options;
    options.anneal.wc = wc;
    options.anneal.wb = 1.0 - wc;
    sa::SaScheduler annealer(options);
    const sim::SimResult result =
        sim::simulate(w.graph, topology, comm, annealer);
    EXPECT_TRUE(schedule_is_valid(w.graph, topology, comm, result))
        << "wc=" << wc;
  }
}

}  // namespace
}  // namespace dagsched
