// Concrete list policies: HLF ordering and placements, fixed-list
// scheduling (including the Graham anomaly), pinned and random schedulers.

#include <gtest/gtest.h>

#include <numeric>

#include "graph/analysis.hpp"
#include "graph/generators.hpp"
#include "sched/fixed_list.hpp"
#include "sched/hlf.hpp"
#include "sched/pinned.hpp"
#include "sched/random_policy.hpp"
#include "sim/engine.hpp"
#include "topology/builders.hpp"

namespace dagsched {
namespace {

TEST(Hlf, AssignsHighestLevelsFirst) {
  // Three ready tasks with distinct levels, two processors: the two
  // highest-level tasks are taken first.
  TaskGraph g;
  const TaskId short_task = g.add_task("short", us(std::int64_t{5}));
  const TaskId long_task = g.add_task("long", us(std::int64_t{50}));
  const TaskId mid_task = g.add_task("mid", us(std::int64_t{20}));
  (void)short_task;
  sched::HlfScheduler hlf;
  const sim::SimResult result =
      sim::simulate(g, topo::line(2), CommModel::disabled(), hlf);
  // long and mid start at 0; short waits.
  EXPECT_EQ(result.trace.task_record(long_task).started, 0);
  EXPECT_EQ(result.trace.task_record(mid_task).started, 0);
  EXPECT_EQ(result.trace.task_record(short_task).started,
            us(std::int64_t{20}));
}

TEST(Hlf, FirstIdlePlacementIsLowestProc) {
  TaskGraph g;
  const TaskId t = g.add_task("t", us(std::int64_t{5}));
  sched::HlfScheduler hlf;
  const sim::SimResult result =
      sim::simulate(g, topo::line(4), CommModel::disabled(), hlf);
  EXPECT_EQ(result.placement[static_cast<std::size_t>(t)], 0);
}

TEST(Hlf, UnitTasksOnTwoProcsPackPerfectly) {
  // 6 unit tasks, no deps: HLF fills both processors every epoch.
  const TaskGraph g = gen::independent(6, us(std::int64_t{10}));
  sched::HlfScheduler hlf;
  const sim::SimResult result =
      sim::simulate(g, topo::line(2), CommModel::disabled(), hlf);
  EXPECT_EQ(result.makespan, us(std::int64_t{30}));
}

TEST(Hlf, MinCommPlacementPrefersProducerProcessor) {
  // a on some processor; consumer b should land on the same one under
  // MinComm (cost 0 locally vs sigma+w remotely).
  TaskGraph g;
  const TaskId a = g.add_task("a", us(std::int64_t{10}));
  const TaskId b = g.add_task("b", us(std::int64_t{10}));
  g.add_edge(a, b, us(std::int64_t{4}));
  sched::HlfScheduler hlf(sched::HlfPlacement::MinComm);
  const sim::SimResult result =
      sim::simulate(g, topo::line(3), CommModel::paper_default(), hlf);
  EXPECT_EQ(result.placement[static_cast<std::size_t>(a)],
            result.placement[static_cast<std::size_t>(b)]);
  EXPECT_EQ(result.num_messages, 0);
}

TEST(Hlf, RandomPlacementIsSeededDeterministic) {
  const TaskGraph g = gen::independent(10, us(std::int64_t{10}));
  sched::HlfScheduler a(sched::HlfPlacement::Random, 99);
  sched::HlfScheduler b(sched::HlfPlacement::Random, 99);
  const auto ra = sim::simulate(g, topo::complete(4),
                                CommModel::disabled(), a);
  const auto rb = sim::simulate(g, topo::complete(4),
                                CommModel::disabled(), b);
  EXPECT_EQ(ra.placement, rb.placement);
}

TEST(Hlf, Names) {
  EXPECT_EQ(sched::HlfScheduler().name(), "HLF");
  EXPECT_EQ(sched::HlfScheduler(sched::HlfPlacement::Random).name(),
            "HLF-random");
  EXPECT_EQ(sched::HlfScheduler(sched::HlfPlacement::MinComm).name(),
            "HLF-mincomm");
}

TEST(FixedList, FollowsTheListAmongReadyTasks) {
  // Two independent tasks; the list prefers the second.
  TaskGraph g;
  const TaskId a = g.add_task("a", us(std::int64_t{10}));
  const TaskId b = g.add_task("b", us(std::int64_t{10}));
  sched::FixedListScheduler policy({b, a});
  const sim::SimResult result =
      sim::simulate(g, topo::line(1), CommModel::disabled(), policy);
  EXPECT_EQ(result.trace.task_record(b).started, 0);
  EXPECT_EQ(result.trace.task_record(a).started, us(std::int64_t{10}));
}

TEST(FixedList, GrahamOriginalMakespan12) {
  const TaskGraph g = gen::graham_anomaly(false);
  std::vector<TaskId> list(9);
  std::iota(list.begin(), list.end(), 0);
  sched::FixedListScheduler policy(list);
  const sim::SimResult result =
      sim::simulate(g, topo::complete(3), CommModel::disabled(), policy);
  EXPECT_EQ(result.makespan, us(std::int64_t{12}));
}

TEST(FixedList, GrahamReducedAnomalyMakespan13) {
  const TaskGraph g = gen::graham_anomaly(true);
  std::vector<TaskId> list(9);
  std::iota(list.begin(), list.end(), 0);
  sched::FixedListScheduler policy(list);
  const sim::SimResult result =
      sim::simulate(g, topo::complete(3), CommModel::disabled(), policy);
  // The famous anomaly: every task got faster, the schedule got longer.
  EXPECT_EQ(result.makespan, us(std::int64_t{13}));
}

TEST(FixedList, ValidatesTheList) {
  TaskGraph g;
  g.add_task("a", 1);
  g.add_task("b", 1);
  const Topology machine = topo::line(1);
  {
    sched::FixedListScheduler policy({0});  // too short
    EXPECT_THROW(sim::simulate(g, machine, CommModel::disabled(), policy),
                 std::invalid_argument);
  }
  {
    sched::FixedListScheduler policy({0, 0});  // duplicate
    EXPECT_THROW(sim::simulate(g, machine, CommModel::disabled(), policy),
                 std::invalid_argument);
  }
  {
    sched::FixedListScheduler policy({0, 7});  // bad id
    EXPECT_THROW(sim::simulate(g, machine, CommModel::disabled(), policy),
                 std::invalid_argument);
  }
}

TEST(Pinned, PlacesEveryTaskWhereTold) {
  const TaskGraph g = gen::independent(6, us(std::int64_t{10}));
  const std::vector<ProcId> mapping = {2, 0, 1, 2, 0, 1};
  sched::PinnedScheduler policy(mapping);
  const sim::SimResult result =
      sim::simulate(g, topo::complete(3), CommModel::disabled(), policy);
  EXPECT_EQ(result.placement, mapping);
  EXPECT_EQ(result.makespan, us(std::int64_t{20}));
}

TEST(Pinned, ValidatesMapping) {
  TaskGraph g;
  g.add_task("a", 1);
  sched::PinnedScheduler short_map(std::vector<ProcId>{});
  EXPECT_THROW(
      sim::simulate(g, topo::line(1), CommModel::disabled(), short_map),
      std::invalid_argument);
  sched::PinnedScheduler bad_proc({5});
  EXPECT_THROW(
      sim::simulate(g, topo::line(1), CommModel::disabled(), bad_proc),
      std::invalid_argument);
}

TEST(Random, SeededDeterminismAndReset) {
  const TaskGraph g = gen::independent(12, us(std::int64_t{10}));
  sched::RandomScheduler policy(123);
  const auto a = sim::simulate(g, topo::complete(4),
                               CommModel::disabled(), policy);
  const auto b = sim::simulate(g, topo::complete(4),
                               CommModel::disabled(), policy);
  EXPECT_EQ(a.placement, b.placement);

  sched::RandomScheduler other(124);
  const auto c = sim::simulate(g, topo::complete(4),
                               CommModel::disabled(), other);
  EXPECT_NE(a.placement, c.placement);  // overwhelmingly likely
}

TEST(EpochContext, RejectsIllegalAssignments) {
  class AbusivePolicy : public sim::SchedulingPolicy {
   public:
    explicit AbusivePolicy(int mode) : mode_(mode) {}
    void on_epoch(sim::EpochContext& ctx) override {
      const TaskId task = ctx.ready_tasks().front();
      const ProcId proc = ctx.idle_procs().front();
      switch (mode_) {
        case 0:
          ctx.assign(task, 999);  // not a processor
          break;
        case 1:
          ctx.assign(999, proc);  // not a ready task
          break;
        case 2:
          ctx.assign(task, proc);
          ctx.assign(task, proc);  // double assignment
          break;
      }
    }
    std::string name() const override { return "abusive"; }

   private:
    int mode_;
  };

  const TaskGraph g = gen::independent(3, us(std::int64_t{1}));
  for (int mode = 0; mode < 3; ++mode) {
    AbusivePolicy policy(mode);
    EXPECT_THROW(
        sim::simulate(g, topo::line(2), CommModel::disabled(), policy),
        std::invalid_argument)
        << "mode " << mode;
  }
}

}  // namespace
}  // namespace dagsched
