// Determinism and distribution sanity of the xoshiro256** generator.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "util/rng.hpp"

namespace dagsched {
namespace {

TEST(Rng, SameSeedSameStream) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDifferentStreams) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, StreamZeroMatchesPlainSeed) {
  // Chain 0 of the multi-chain annealers must keep the historical
  // single-chain sequences.
  Rng plain(42);
  Rng stream0 = Rng::stream(42, 0);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(plain.next_u64(), stream0.next_u64());
  }
}

TEST(Rng, StreamsAreDecorrelated) {
  Rng a = Rng::stream(42, 1);
  Rng b = Rng::stream(42, 2);
  Rng c = Rng::stream(43, 1);
  int ab_equal = 0;
  int ac_equal = 0;
  for (int i = 0; i < 100; ++i) {
    const std::uint64_t va = a.next_u64();
    if (va == b.next_u64()) ++ab_equal;
    if (va == c.next_u64()) ++ac_equal;
  }
  EXPECT_LT(ab_equal, 3);
  EXPECT_LT(ac_equal, 3);
}

TEST(Rng, StreamsAreDeterministic) {
  Rng a = Rng::stream(7, 5);
  Rng b = Rng::stream(7, 5);
  for (int i = 0; i < 100; ++i) {
    ASSERT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, ZeroSeedIsUsable) {
  Rng rng(0);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 100; ++i) seen.insert(rng.next_u64());
  EXPECT_GT(seen.size(), 95u);
}

TEST(Rng, UniformIntStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const auto v = rng.uniform_int(-5, 17);
    ASSERT_GE(v, -5);
    ASSERT_LE(v, 17);
  }
}

TEST(Rng, UniformIntDegenerateRange) {
  Rng rng(7);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.uniform_int(3, 3), 3);
}

TEST(Rng, UniformIntRejectsInvertedRange) {
  Rng rng(7);
  EXPECT_THROW(rng.uniform_int(2, 1), std::invalid_argument);
}

TEST(Rng, UniformIntCoversAllValues) {
  Rng rng(11);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(rng.uniform_int(0, 9));
  EXPECT_EQ(seen.size(), 10u);
}

TEST(Rng, UniformIntIsRoughlyUniform) {
  Rng rng(13);
  std::vector<int> counts(10, 0);
  const int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) {
    counts[static_cast<std::size_t>(rng.uniform_int(0, 9))]++;
  }
  for (int c : counts) {
    EXPECT_NEAR(c, kDraws / 10, kDraws / 100);  // within 10% relative
  }
}

TEST(Rng, Uniform01StaysInUnitInterval) {
  Rng rng(17);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.uniform01();
    ASSERT_GE(v, 0.0);
    ASSERT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, UniformIndexBounds) {
  Rng rng(19);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_LT(rng.uniform_index(7), 7u);
  }
  EXPECT_THROW(rng.uniform_index(0), std::invalid_argument);
}

TEST(Rng, BernoulliExtremes) {
  Rng rng(23);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
    EXPECT_FALSE(rng.bernoulli(-0.5));
    EXPECT_TRUE(rng.bernoulli(1.5));
  }
}

TEST(Rng, BernoulliRate) {
  Rng rng(29);
  int hits = 0;
  const int kDraws = 50000;
  for (int i = 0; i < kDraws; ++i) {
    if (rng.bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / kDraws, 0.3, 0.02);
}

TEST(Rng, NormalMoments) {
  Rng rng(31);
  double sum = 0.0;
  double sum_sq = 0.0;
  const int kDraws = 50000;
  for (int i = 0; i < kDraws; ++i) {
    const double v = rng.normal();
    sum += v;
    sum_sq += v * v;
  }
  EXPECT_NEAR(sum / kDraws, 0.0, 0.03);
  EXPECT_NEAR(sum_sq / kDraws, 1.0, 0.05);
}

TEST(Rng, NormalWithParameters) {
  Rng rng(37);
  double sum = 0.0;
  const int kDraws = 20000;
  for (int i = 0; i < kDraws; ++i) sum += rng.normal(10.0, 2.0);
  EXPECT_NEAR(sum / kDraws, 10.0, 0.1);
  EXPECT_THROW(rng.normal(0.0, -1.0), std::invalid_argument);
}

TEST(Rng, ShuffleIsAPermutation) {
  Rng rng(41);
  std::vector<int> values(100);
  for (int i = 0; i < 100; ++i) values[static_cast<std::size_t>(i)] = i;
  rng.shuffle(values);
  std::vector<int> sorted = values;
  std::sort(sorted.begin(), sorted.end());
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(sorted[static_cast<std::size_t>(i)], i);
  }
  // And actually shuffles.
  int displaced = 0;
  for (int i = 0; i < 100; ++i) {
    if (values[static_cast<std::size_t>(i)] != i) ++displaced;
  }
  EXPECT_GT(displaced, 50);
}

TEST(Rng, PickReturnsElementsFromSpan) {
  Rng rng(43);
  const std::vector<int> values = {2, 4, 8};
  for (int i = 0; i < 100; ++i) {
    const int v = rng.pick(std::span<const int>(values));
    EXPECT_TRUE(v == 2 || v == 4 || v == 8);
  }
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng parent(47);
  Rng child = parent.split();
  // The child stream differs from the parent's continuation.
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (parent.next_u64() == child.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, SplitIsDeterministic) {
  Rng a(51);
  Rng b(51);
  Rng child_a = a.split();
  Rng child_b = b.split();
  for (int i = 0; i < 100; ++i) {
    ASSERT_EQ(child_a.next_u64(), child_b.next_u64());
  }
}

}  // namespace
}  // namespace dagsched
