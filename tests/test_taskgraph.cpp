// TaskGraph structure: construction, adjacency, validation, mutation.

#include <gtest/gtest.h>

#include "graph/taskgraph.hpp"

namespace dagsched {
namespace {

TaskGraph make_triangle() {
  TaskGraph g("triangle");
  const TaskId a = g.add_task("a", us(std::int64_t{10}));
  const TaskId b = g.add_task("b", us(std::int64_t{20}));
  const TaskId c = g.add_task("c", us(std::int64_t{30}));
  g.add_edge(a, b, us(std::int64_t{1}));
  g.add_edge(a, c, us(std::int64_t{2}));
  g.add_edge(b, c, us(std::int64_t{3}));
  return g;
}

TEST(TaskGraph, DenseIdsInInsertionOrder) {
  TaskGraph g;
  EXPECT_EQ(g.add_task("t0", 1), 0);
  EXPECT_EQ(g.add_task("t1", 2), 1);
  EXPECT_EQ(g.add_task("t2", 3), 2);
  EXPECT_EQ(g.num_tasks(), 3);
  EXPECT_EQ(g.task_name(1), "t1");
  EXPECT_EQ(g.duration(2), 3);
}

TEST(TaskGraph, AdjacencyViews) {
  const TaskGraph g = make_triangle();
  ASSERT_EQ(g.successors(0).size(), 2u);
  EXPECT_EQ(g.successors(0)[0].task, 1);
  EXPECT_EQ(g.successors(0)[1].task, 2);
  ASSERT_EQ(g.predecessors(2).size(), 2u);
  EXPECT_EQ(g.predecessors(2)[0].task, 0);
  EXPECT_EQ(g.predecessors(2)[0].weight, us(std::int64_t{2}));
  EXPECT_EQ(g.in_degree(0), 0);
  EXPECT_EQ(g.out_degree(0), 2);
  EXPECT_EQ(g.in_degree(2), 2);
}

TEST(TaskGraph, EdgeQueries) {
  const TaskGraph g = make_triangle();
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_FALSE(g.has_edge(1, 0));  // directed
  EXPECT_FALSE(g.has_edge(2, 0));
  EXPECT_EQ(g.edge_weight(1, 2), us(std::int64_t{3}));
  EXPECT_THROW(g.edge_weight(2, 1), std::invalid_argument);
  EXPECT_EQ(g.num_edges(), 3);
}

TEST(TaskGraph, Totals) {
  const TaskGraph g = make_triangle();
  EXPECT_EQ(g.total_work(), us(std::int64_t{60}));
  EXPECT_EQ(g.total_comm(), us(std::int64_t{6}));
}

TEST(TaskGraph, RootsAndLeaves) {
  const TaskGraph g = make_triangle();
  EXPECT_EQ(g.roots(), std::vector<TaskId>{0});
  EXPECT_EQ(g.leaves(), std::vector<TaskId>{2});
}

TEST(TaskGraph, RejectsBadEdges) {
  TaskGraph g;
  const TaskId a = g.add_task("a", 1);
  const TaskId b = g.add_task("b", 1);
  EXPECT_THROW(g.add_edge(a, a, 0), std::invalid_argument);       // self loop
  EXPECT_THROW(g.add_edge(a, 99, 0), std::invalid_argument);     // bad id
  EXPECT_THROW(g.add_edge(-1, b, 0), std::invalid_argument);     // bad id
  EXPECT_THROW(g.add_edge(a, b, -1), std::invalid_argument);     // negative
  g.add_edge(a, b, 0);
  EXPECT_THROW(g.add_edge(a, b, 5), std::invalid_argument);      // duplicate
}

TEST(TaskGraph, RejectsNegativeDuration) {
  TaskGraph g;
  EXPECT_THROW(g.add_task("bad", -1), std::invalid_argument);
}

TEST(TaskGraph, MutationUpdatesAllViews) {
  TaskGraph g = make_triangle();
  g.set_duration(1, us(std::int64_t{99}));
  EXPECT_EQ(g.duration(1), us(std::int64_t{99}));

  g.set_edge_weight(0, 1, us(std::int64_t{42}));
  EXPECT_EQ(g.edge_weight(0, 1), us(std::int64_t{42}));
  EXPECT_EQ(g.successors(0)[0].weight, us(std::int64_t{42}));
  EXPECT_EQ(g.predecessors(1)[0].weight, us(std::int64_t{42}));
  bool found = false;
  for (const Edge& e : g.edges()) {
    if (e.from == 0 && e.to == 1) {
      EXPECT_EQ(e.weight, us(std::int64_t{42}));
      found = true;
    }
  }
  EXPECT_TRUE(found);
  EXPECT_THROW(g.set_edge_weight(2, 0, 1), std::invalid_argument);
  EXPECT_THROW(g.set_duration(99, 1), std::invalid_argument);
}

TEST(TaskGraph, AcyclicityDetection) {
  TaskGraph g;
  const TaskId a = g.add_task("a", 1);
  const TaskId b = g.add_task("b", 1);
  const TaskId c = g.add_task("c", 1);
  g.add_edge(a, b, 0);
  g.add_edge(b, c, 0);
  EXPECT_TRUE(g.is_acyclic());
  g.add_edge(c, a, 0);  // closes the cycle
  EXPECT_FALSE(g.is_acyclic());
  EXPECT_THROW(g.validate(), std::invalid_argument);
}

TEST(TaskGraph, ValidateRejectsEmpty) {
  TaskGraph g;
  EXPECT_THROW(g.validate(), std::invalid_argument);
}

TEST(TaskGraph, SingleTaskIsValid) {
  TaskGraph g;
  g.add_task("only", 5);
  EXPECT_NO_THROW(g.validate());
  EXPECT_TRUE(g.is_acyclic());
  EXPECT_EQ(g.roots().size(), 1u);
  EXPECT_EQ(g.leaves().size(), 1u);
}

TEST(TaskGraph, ZeroWeightAndZeroDurationAllowed) {
  TaskGraph g;
  const TaskId a = g.add_task("a", 0);
  const TaskId b = g.add_task("b", 0);
  g.add_edge(a, b, 0);
  EXPECT_NO_THROW(g.validate());
}

TEST(TaskGraph, LargeGraphStaysConsistent) {
  TaskGraph g("chainy");
  const int n = 5000;
  for (int i = 0; i < n; ++i) g.add_task("t" + std::to_string(i), 10);
  for (int i = 0; i + 1 < n; ++i) g.add_edge(i, i + 1, 1);
  EXPECT_EQ(g.num_tasks(), n);
  EXPECT_EQ(g.num_edges(), n - 1);
  EXPECT_TRUE(g.is_acyclic());
  EXPECT_EQ(g.total_work(), Time{10} * n);
}

}  // namespace
}  // namespace dagsched
