// Topology builders, distances, routing, and channels; parameterized over
// hypercube dimensions and ring sizes against closed-form distances.

#include <gtest/gtest.h>

#include <bit>

#include "topology/builders.hpp"
#include "topology/topology.hpp"

namespace dagsched {
namespace {

class HypercubeDims : public ::testing::TestWithParam<int> {};

TEST_P(HypercubeDims, DistancesAreHammingDistances) {
  const int dim = GetParam();
  const Topology t = topo::hypercube(dim);
  EXPECT_EQ(t.num_procs(), 1 << dim);
  EXPECT_EQ(t.num_links(), dim * (1 << dim) / 2);
  EXPECT_EQ(t.diameter(), dim);
  for (ProcId a = 0; a < t.num_procs(); ++a) {
    for (ProcId b = 0; b < t.num_procs(); ++b) {
      const int hamming = std::popcount(static_cast<unsigned>(a ^ b));
      ASSERT_EQ(t.distance(a, b), hamming)
          << "between " << a << " and " << b;
    }
  }
}

TEST_P(HypercubeDims, RoutesAreShortestAndValid) {
  const Topology t = topo::hypercube(GetParam());
  for (ProcId a = 0; a < t.num_procs(); ++a) {
    for (ProcId b = 0; b < t.num_procs(); ++b) {
      const auto path = t.route(a, b);
      ASSERT_EQ(static_cast<int>(path.size()), t.distance(a, b) + 1);
      EXPECT_EQ(path.front(), a);
      EXPECT_EQ(path.back(), b);
      for (std::size_t i = 0; i + 1 < path.size(); ++i) {
        ASSERT_TRUE(t.has_link(path[i], path[i + 1]));
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Dims, HypercubeDims, ::testing::Values(0, 1, 2, 3,
                                                                4));

class RingSizes : public ::testing::TestWithParam<int> {};

TEST_P(RingSizes, DistancesAreCircular) {
  const int n = GetParam();
  const Topology t = topo::ring(n);
  EXPECT_EQ(t.num_procs(), n);
  EXPECT_EQ(t.diameter(), n / 2);
  for (ProcId a = 0; a < n; ++a) {
    for (ProcId b = 0; b < n; ++b) {
      const int direct = std::abs(a - b);
      const int expected = std::min(direct, n - direct);
      ASSERT_EQ(t.distance(a, b), expected);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, RingSizes, ::testing::Values(3, 4, 5, 8, 9,
                                                             16));

TEST(Ring, DegenerateSizes) {
  EXPECT_EQ(topo::ring(1).num_procs(), 1);
  const Topology two = topo::ring(2);
  EXPECT_EQ(two.num_links(), 1);
  EXPECT_EQ(two.distance(0, 1), 1);
}

TEST(Bus, IsDistanceOneCrossbar) {
  const Topology t = topo::bus(8);
  EXPECT_EQ(t.num_procs(), 8);
  EXPECT_EQ(t.diameter(), 1);
  EXPECT_EQ(t.num_channels(), 28);  // one per pair
  for (ProcId a = 0; a < 8; ++a) {
    for (ProcId b = 0; b < 8; ++b) {
      EXPECT_EQ(t.distance(a, b), a == b ? 0 : 1);
    }
  }
}

TEST(SharedBus, SingleChannelDistanceOne) {
  const Topology t = topo::shared_bus(8);
  EXPECT_EQ(t.diameter(), 1);
  EXPECT_EQ(t.num_channels(), 1);
  EXPECT_EQ(t.channel(0, 5), t.channel(3, 7));  // same contention domain
}

TEST(Star, LeafTrafficRoutesThroughHub) {
  const Topology t = topo::star(6);
  EXPECT_EQ(t.diameter(), 2);
  EXPECT_EQ(t.degree(0), 5);
  EXPECT_EQ(t.degree(3), 1);
  const auto path = t.route(2, 4);
  ASSERT_EQ(path.size(), 3u);
  EXPECT_EQ(path[1], 0);  // via the hub
}

TEST(Mesh, ManhattanDistances) {
  const Topology t = topo::mesh(3, 4);
  EXPECT_EQ(t.num_procs(), 12);
  EXPECT_EQ(t.diameter(), 5);  // (3-1)+(4-1)
  const auto id = [](int r, int c) { return r * 4 + c; };
  EXPECT_EQ(t.distance(id(0, 0), id(2, 3)), 5);
  EXPECT_EQ(t.distance(id(1, 1), id(1, 2)), 1);
  EXPECT_EQ(t.distance(id(0, 2), id(2, 2)), 2);
}

TEST(Torus, WraparoundShortensDistances) {
  const Topology t = topo::torus(4, 4);
  const auto id = [](int r, int c) { return r * 4 + c; };
  EXPECT_EQ(t.distance(id(0, 0), id(0, 3)), 1);  // wraps
  EXPECT_EQ(t.distance(id(0, 0), id(3, 3)), 2);
  EXPECT_EQ(t.diameter(), 4);
}

TEST(Torus, SmallDimensionsAvoidDuplicateLinks) {
  EXPECT_NO_THROW(topo::torus(2, 2));
  EXPECT_NO_THROW(topo::torus(1, 4));
  const Topology t = topo::torus(2, 3);
  EXPECT_GT(t.num_links(), 0);
}

TEST(Complete, AllPairsAdjacent) {
  const Topology t = topo::complete(5);
  EXPECT_EQ(t.num_links(), 10);
  EXPECT_EQ(t.diameter(), 1);
}

TEST(Line, EndToEndDistance) {
  const Topology t = topo::line(6);
  EXPECT_EQ(t.diameter(), 5);
  EXPECT_EQ(t.distance(0, 5), 5);
  const auto path = t.route(0, 3);
  EXPECT_EQ(path, (std::vector<ProcId>{0, 1, 2, 3}));
}

TEST(BinaryTree, ShapeAndDistances) {
  const Topology t = topo::binary_tree(3);
  EXPECT_EQ(t.num_procs(), 7);
  EXPECT_EQ(t.distance(3, 4), 2);  // siblings via parent 1
  EXPECT_EQ(t.distance(3, 6), 4);  // across the root
  EXPECT_EQ(t.diameter(), 4);
}

TEST(Topology, FromLinksValidation) {
  EXPECT_THROW(Topology::from_links(0, {}, "x"), std::invalid_argument);
  EXPECT_THROW(Topology::from_links(2, {{0, 0}}, "x"),
               std::invalid_argument);  // self link
  EXPECT_THROW(Topology::from_links(2, {{0, 2}}, "x"),
               std::invalid_argument);  // out of range
  EXPECT_THROW(Topology::from_links(2, {{0, 1}, {1, 0}}, "x"),
               std::invalid_argument);  // duplicate
  EXPECT_THROW(Topology::from_links(3, {{0, 1}}, "x"),
               std::invalid_argument);  // disconnected
}

TEST(Topology, ChannelsIdentifyLinks) {
  const Topology t = topo::ring(4);
  EXPECT_EQ(t.num_channels(), 4);
  EXPECT_EQ(t.channel(0, 1), t.channel(1, 0));  // symmetric
  EXPECT_NE(t.channel(0, 1), t.channel(1, 2));
  EXPECT_EQ(t.channel(0, 2), kInvalidChannel);  // not adjacent
  EXPECT_EQ(t.channel(1, 1), kInvalidChannel);
}

TEST(Topology, NextHopIsDeterministicLowestId) {
  // In hypercube(3), 0 -> 7 has shortest next hops {1, 2, 4}; the
  // deterministic rule picks 1.
  const Topology t = topo::hypercube(3);
  EXPECT_EQ(t.next_hop(0, 7), 1);
  EXPECT_EQ(t.next_hop(0, 0), 0);
}

TEST(Topology, DistanceProperties) {
  for (const Topology& t : {topo::hypercube(3), topo::ring(9),
                            topo::mesh(3, 3), topo::star(7)}) {
    for (ProcId a = 0; a < t.num_procs(); ++a) {
      ASSERT_EQ(t.distance(a, a), 0);
      for (ProcId b = 0; b < t.num_procs(); ++b) {
        ASSERT_EQ(t.distance(a, b), t.distance(b, a));  // symmetry
        ASSERT_LE(t.distance(a, b), t.diameter());
        if (a != b) ASSERT_GE(t.distance(a, b), 1);
      }
    }
  }
}

TEST(ByName, ResolvesFixedAndParameterizedSpecs) {
  EXPECT_EQ(topo::by_name("hypercube8").num_procs(), 8);
  EXPECT_EQ(topo::by_name("bus8").num_procs(), 8);
  EXPECT_EQ(topo::by_name("ring9").num_procs(), 9);
  EXPECT_EQ(topo::by_name("ring:5").num_procs(), 5);
  EXPECT_EQ(topo::by_name("hypercube:4").num_procs(), 16);
  EXPECT_EQ(topo::by_name("mesh:3x3").num_procs(), 9);
  EXPECT_EQ(topo::by_name("torus:2x4").num_procs(), 8);
  EXPECT_EQ(topo::by_name("sharedbus:4").num_channels(), 1);
  EXPECT_EQ(topo::by_name("btree:3").num_procs(), 7);
  EXPECT_THROW(topo::by_name("nope"), std::invalid_argument);
  EXPECT_THROW(topo::by_name("mesh:9"), std::invalid_argument);
  EXPECT_THROW(topo::by_name("ring:x"), std::invalid_argument);
}

}  // namespace
}  // namespace dagsched
