// Report layer: Gantt rendering, the comparison harness, paper tables.

#include <gtest/gtest.h>

#include "report/experiment.hpp"
#include "report/gantt.hpp"
#include "report/paper.hpp"
#include "sched/pinned.hpp"
#include "sim/engine.hpp"
#include "topology/builders.hpp"
#include "workloads/registry.hpp"

namespace dagsched {
namespace {

TEST(Gantt, RendersTaskBlocksAndCommMarkers) {
  TaskGraph g;
  const TaskId a = g.add_task("a", us(std::int64_t{10}));
  const TaskId b = g.add_task("b", us(std::int64_t{10}));
  g.add_edge(a, b, us(std::int64_t{4}));
  sched::PinnedScheduler policy({0, 1});
  const sim::SimResult result =
      sim::simulate(g, topo::line(2), CommModel::paper_default(), policy);
  const std::string gantt =
      report::render_gantt(g, topo::line(2), result.trace);
  EXPECT_NE(gantt.find("P0"), std::string::npos);
  EXPECT_NE(gantt.find("P1"), std::string::npos);
  EXPECT_NE(gantt.find('S'), std::string::npos);  // send on P0
  EXPECT_NE(gantt.find('R'), std::string::npos);  // receive on P1
  EXPECT_NE(gantt.find('0'), std::string::npos);  // task glyphs
  EXPECT_NE(gantt.find('1'), std::string::npos);
  EXPECT_NE(gantt.find("legend"), std::string::npos);
}

TEST(Gantt, RouteMarkerOnIntermediateProcessor) {
  TaskGraph g;
  const TaskId a = g.add_task("a", us(std::int64_t{10}));
  const TaskId b = g.add_task("b", us(std::int64_t{10}));
  g.add_edge(a, b, us(std::int64_t{4}));
  sched::PinnedScheduler policy({0, 2});
  const sim::SimResult result =
      sim::simulate(g, topo::line(3), CommModel::paper_default(), policy);
  const std::string gantt =
      report::render_gantt(g, topo::line(3), result.trace);
  EXPECT_NE(gantt.find('r'), std::string::npos);  // routing on P1
}

TEST(Gantt, WindowAndOptionsControls) {
  TaskGraph g;
  g.add_task("a", us(std::int64_t{100}));
  sched::PinnedScheduler policy({0});
  const sim::SimResult result =
      sim::simulate(g, topo::line(1), CommModel::disabled(), policy);
  report::GanttOptions options;
  options.width = 40;
  options.show_comm_rows = false;
  options.show_legend = false;
  options.window_end = us(std::int64_t{50});
  const std::string gantt =
      report::render_gantt(g, topo::line(1), result.trace, options);
  EXPECT_EQ(gantt.find('S'), std::string::npos);
  EXPECT_EQ(gantt.find("legend"), std::string::npos);
  // One task row plus axis rows only.
  EXPECT_NE(gantt.find("P0"), std::string::npos);
}

TEST(Gantt, RejectsDegenerateWindows) {
  TaskGraph g;
  g.add_task("a", us(std::int64_t{10}));
  sched::PinnedScheduler policy({0});
  const sim::SimResult result =
      sim::simulate(g, topo::line(1), CommModel::disabled(), policy);
  report::GanttOptions bad_width;
  bad_width.width = 2;
  EXPECT_THROW(
      report::render_gantt(g, topo::line(1), result.trace, bad_width),
      std::invalid_argument);
  report::GanttOptions empty_window;
  empty_window.window_start = us(std::int64_t{5});
  empty_window.window_end = us(std::int64_t{5});
  EXPECT_THROW(
      report::render_gantt(g, topo::line(1), result.trace, empty_window),
      std::invalid_argument);
}

TEST(PaperTables, TwentyFourCellsAndLookup) {
  EXPECT_EQ(report::paper_table2().size(), 24u);
  const auto cell = report::paper_speedup("NE", "ring9p", true);
  ASSERT_TRUE(cell.has_value());
  EXPECT_DOUBLE_EQ(cell->sa, 5.50);
  EXPECT_DOUBLE_EQ(cell->hlf, 3.60);
  EXPECT_NEAR(cell->gain_pct(), 52.8, 0.1);
  EXPECT_FALSE(report::paper_speedup("NE", "mesh3x3", true).has_value());
}

TEST(PaperTables, GainsArePositiveWithComm) {
  for (const report::PaperSpeedup& cell : report::paper_table2()) {
    if (cell.with_comm) {
      EXPECT_GT(cell.sa, cell.hlf)
          << cell.program << " " << cell.topology;
    }
  }
}

TEST(Experiment, ProgramKeys) {
  EXPECT_EQ(report::program_key("newton_euler"), "NE");
  EXPECT_EQ(report::program_key("gauss_jordan"), "GJ");
  EXPECT_EQ(report::program_key("matmul"), "MM");
  EXPECT_EQ(report::program_key("fft"), "FFT");
  EXPECT_EQ(report::program_key("other"), "other");
}

TEST(Experiment, CompareRunsBothPolicies) {
  const workloads::Workload w = workloads::by_name("FFT");
  report::CompareOptions options;
  options.sa_seeds = 2;
  const report::ComparisonRow row = report::compare_sa_hlf(
      "FFT", w.graph, topo::hypercube(3), CommModel::paper_default(),
      options);
  EXPECT_EQ(row.program, "FFT");
  EXPECT_EQ(row.topology, "hypercube8p");
  EXPECT_TRUE(row.with_comm);
  EXPECT_GT(row.sa_speedup, 0.0);
  EXPECT_GT(row.hlf_speedup, 0.0);
  EXPECT_GT(row.sa_makespan, 0);
  EXPECT_GE(row.sa_best_seed, 1u);
  EXPECT_LE(row.sa_best_seed, 2u);
  EXPECT_GT(row.sa_stats.packets, 0);
}

TEST(Experiment, BestOfSeedsIsMonotoneInSeedCount) {
  const workloads::Workload w = workloads::by_name("MM");
  report::CompareOptions one;
  one.sa_seeds = 1;
  report::CompareOptions three;
  three.sa_seeds = 3;
  const auto row1 = report::compare_sa_hlf(
      "MM", w.graph, topo::ring(9), CommModel::paper_default(), one);
  const auto row3 = report::compare_sa_hlf(
      "MM", w.graph, topo::ring(9), CommModel::paper_default(), three);
  EXPECT_LE(row3.sa_makespan, row1.sa_makespan);
  EXPECT_EQ(row1.hlf_makespan, row3.hlf_makespan);  // HLF deterministic
}

TEST(Experiment, GainPercentage) {
  report::ComparisonRow row;
  row.sa_speedup = 6.0;
  row.hlf_speedup = 5.0;
  EXPECT_NEAR(row.gain_pct(), 20.0, 1e-12);
  row.hlf_speedup = 0.0;
  EXPECT_DOUBLE_EQ(row.gain_pct(), 0.0);
}

TEST(Experiment, RejectsBadOptions) {
  const workloads::Workload w = workloads::by_name("FFT");
  report::CompareOptions options;
  options.sa_seeds = 0;
  EXPECT_THROW(report::compare_sa_hlf("FFT", w.graph, topo::bus(8),
                                      CommModel::disabled(), options),
               std::invalid_argument);
}

}  // namespace
}  // namespace dagsched
