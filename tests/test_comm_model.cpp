// Communication model: the paper's constants, eq. 4, and message timing.

#include <gtest/gtest.h>

#include "topology/comm_model.hpp"

namespace dagsched {
namespace {

TEST(CommModel, PaperConstants) {
  const CommModel m = CommModel::paper_default();
  EXPECT_TRUE(m.enabled);
  // sigma = 2S + O = 2*2 + 3 = 7us; tau = 2S + H + O = 9us.
  EXPECT_EQ(m.sigma, us(std::int64_t{7}));
  EXPECT_EQ(m.tau, us(std::int64_t{9}));
}

TEST(CommModel, FromOverheads) {
  const CommModel m = CommModel::from_overheads(us(std::int64_t{1}),
                                                us(std::int64_t{2}),
                                                us(std::int64_t{3}));
  EXPECT_EQ(m.sigma, us(std::int64_t{4}));  // 2*1 + 2
  EXPECT_EQ(m.tau, us(std::int64_t{7}));    // 2*1 + 3 + 2
  EXPECT_THROW(CommModel::from_overheads(-1, 0, 0), std::invalid_argument);
}

TEST(CommModel, DisabledIsFree) {
  const CommModel m = CommModel::disabled();
  EXPECT_FALSE(m.enabled);
  EXPECT_EQ(m.analytic_cost(us(std::int64_t{100}), 5), 0);
}

TEST(MessageTime, PaperVariableIs4us) {
  // 40 bits on a 10 Mb/s link = 4us.
  EXPECT_EQ(variable_time(1), us(std::int64_t{4}));
  EXPECT_EQ(variable_time(3), us(std::int64_t{12}));
  EXPECT_EQ(variable_time(0), 0);
  EXPECT_EQ(message_time(kPaperBitsPerVariable, kPaperBandwidthBitsPerSec),
            us(std::int64_t{4}));
}

TEST(MessageTime, Validation) {
  EXPECT_THROW(message_time(-1, 1000), std::invalid_argument);
  EXPECT_THROW(message_time(10, 0), std::invalid_argument);
  EXPECT_THROW(variable_time(-1), std::invalid_argument);
}

TEST(AnalyticCost, Equation4Cases) {
  const CommModel m = CommModel::paper_default();
  const Time w = us(std::int64_t{4});
  // Same processor (delta = 1, d = 0): zero.
  EXPECT_EQ(m.analytic_cost(w, 0), 0);
  // Neighbors (d = 1): w + sigma.
  EXPECT_EQ(m.analytic_cost(w, 1), us(std::int64_t{11}));
  // Distance 2: 2w + tau + sigma.
  EXPECT_EQ(m.analytic_cost(w, 2), us(std::int64_t{24}));
  // Distance 3: 3w + 2tau + sigma.
  EXPECT_EQ(m.analytic_cost(w, 3), us(std::int64_t{37}));
}

TEST(AnalyticCost, ZeroWeightStillPaysOverheads) {
  const CommModel m = CommModel::paper_default();
  EXPECT_EQ(m.analytic_cost(0, 1), m.sigma);
  EXPECT_EQ(m.analytic_cost(0, 3), 2 * m.tau + m.sigma);
}

TEST(AnalyticCost, MonotoneInDistanceAndWeight) {
  const CommModel m = CommModel::paper_default();
  Time previous = 0;
  for (int d = 1; d <= 6; ++d) {
    const Time cost = m.analytic_cost(us(std::int64_t{4}), d);
    EXPECT_GT(cost, previous);
    previous = cost;
  }
  EXPECT_LT(m.analytic_cost(us(std::int64_t{2}), 2),
            m.analytic_cost(us(std::int64_t{8}), 2));
}

TEST(AnalyticCost, Validation) {
  const CommModel m = CommModel::paper_default();
  EXPECT_THROW(m.analytic_cost(-1, 1), std::invalid_argument);
  EXPECT_THROW(m.analytic_cost(1, -1), std::invalid_argument);
}

TEST(CommModel, DefaultSendCpuIsPerTaskOutput) {
  EXPECT_EQ(CommModel::paper_default().send_cpu, SendCpu::PerTaskOutput);
}

}  // namespace
}  // namespace dagsched
