// Cross-policy schedule-validity invariant: every policy a sweep can
// compare — sa, gsa, hlf, hlf-mincomm, etf, list-hlf, heft, peft,
// random — must produce schedules that pass the shared validator
// (schedule_checks.hpp) on randomized instances spanning graph families,
// topologies and communication parameters.  This is the sweep's
// correctness floor: the ranking table is meaningless if any policy can
// emit an invalid schedule.

#include <gtest/gtest.h>

#include <vector>

#include "core/global_annealer.hpp"
#include "core/sa_scheduler.hpp"
#include "graph/generators.hpp"
#include "schedule_checks.hpp"
#include "sched/etf.hpp"
#include "sched/fixed_list.hpp"
#include "sched/heft.hpp"
#include "sched/hlf.hpp"
#include "sched/pinned.hpp"
#include "sched/random_policy.hpp"
#include "sim/engine.hpp"
#include "sweep/spec.hpp"
#include "topology/builders.hpp"
#include "util/rng.hpp"

namespace dagsched {
namespace {

/// Every policy the sweep knows, in spec order.
const sweep::PolicyKind kAllPolicies[] = {
    sweep::PolicyKind::Sa,        sweep::PolicyKind::Gsa,
    sweep::PolicyKind::Hlf,       sweep::PolicyKind::HlfMinComm,
    sweep::PolicyKind::Etf,       sweep::PolicyKind::FixedHlf,
    sweep::PolicyKind::Heft,      sweep::PolicyKind::Peft,
    sweep::PolicyKind::Random,
};

/// Runs `kind` on one instance with trace recording, mirroring the sweep
/// runner's policy construction (kept small: gsa uses a short schedule).
sim::SimResult run_policy_with_trace(sweep::PolicyKind kind,
                                     const TaskGraph& graph,
                                     const Topology& topology,
                                     const CommModel& comm,
                                     std::uint64_t seed) {
  switch (kind) {
    case sweep::PolicyKind::Sa: {
      sa::SaSchedulerOptions options;
      options.anneal.cooling.max_steps = 12;
      options.seed = seed;
      sa::SaScheduler policy(options);
      return sim::simulate(graph, topology, comm, policy);
    }
    case sweep::PolicyKind::Gsa: {
      sa::GlobalAnnealOptions options;
      options.cooling.max_steps = 6;
      options.num_chains = 1;
      options.seed = seed;
      const sa::GlobalAnnealResult annealed =
          sa::anneal_global(graph, topology, comm, options);
      sched::PinnedScheduler replay(annealed.mapping);
      sim::SimResult result = sim::simulate(graph, topology, comm, replay);
      EXPECT_EQ(result.makespan, annealed.makespan)
          << "gsa replay drifted from the annealer's reported makespan";
      return result;
    }
    case sweep::PolicyKind::Hlf: {
      sched::HlfScheduler policy(sched::HlfPlacement::FirstIdle);
      return sim::simulate(graph, topology, comm, policy);
    }
    case sweep::PolicyKind::HlfMinComm: {
      sched::HlfScheduler policy(sched::HlfPlacement::MinComm);
      return sim::simulate(graph, topology, comm, policy);
    }
    case sweep::PolicyKind::Etf: {
      sched::EtfScheduler policy;
      return sim::simulate(graph, topology, comm, policy);
    }
    case sweep::PolicyKind::FixedHlf: {
      sched::FixedListScheduler policy(sched::hlf_priority_list(graph));
      return sim::simulate(graph, topology, comm, policy);
    }
    case sweep::PolicyKind::Heft: {
      sched::HeftScheduler policy(sched::HeftVariant::Heft);
      return sim::simulate(graph, topology, comm, policy);
    }
    case sweep::PolicyKind::Peft: {
      sched::HeftScheduler policy(sched::HeftVariant::Peft);
      return sim::simulate(graph, topology, comm, policy);
    }
    case sweep::PolicyKind::Random: {
      sched::RandomScheduler policy(seed);
      return sim::simulate(graph, topology, comm, policy);
    }
  }
  throw std::invalid_argument("unknown policy kind");
}

TaskGraph random_graph(Rng& rng, int round) {
  if (round % 2 == 0) {
    gen::GnpDagOptions options;
    options.num_tasks = 10 + static_cast<int>(rng.uniform_index(20));
    options.edge_probability = 0.08 + 0.2 * rng.uniform01();
    options.seed = rng.next_u64();
    return gen::gnp_dag(options);
  }
  gen::LayeredDagOptions options;
  options.layers = 3 + static_cast<int>(rng.uniform_index(3));
  options.seed = rng.next_u64();
  return gen::layered_dag(options);
}

CommModel random_comm(Rng& rng, int round) {
  if (round % 5 == 4) return CommModel::disabled();
  CommModel comm = CommModel::paper_default();
  comm.sigma = us(rng.uniform_int(0, 12));
  comm.tau = us(rng.uniform_int(0, 12));
  comm.send_cpu = (round % 3 == 0)   ? SendCpu::PerMessage
                  : (round % 3 == 1) ? SendCpu::PerTaskOutput
                                     : SendCpu::Offloaded;
  return comm;
}

TEST(CrossPolicy, EveryPolicyPassesTheSharedValidator) {
  Rng rng(0xC0FFEE);
  const Topology machines[] = {topo::hypercube(3), topo::ring(5),
                               topo::mesh(2, 3), topo::shared_bus(4)};
  for (int round = 0; round < 6; ++round) {
    const TaskGraph graph = random_graph(rng, round);
    const Topology& machine = machines[round % 4];
    const CommModel comm = random_comm(rng, round);
    for (const sweep::PolicyKind kind : kAllPolicies) {
      const std::uint64_t seed = rng.next_u64();
      const sim::SimResult result =
          run_policy_with_trace(kind, graph, machine, comm, seed);
      EXPECT_GT(result.makespan, 0);
      EXPECT_TRUE(schedule_is_valid(graph, machine, comm, result))
          << sweep::to_string(kind) << " on " << machine.name()
          << " (round " << round << ", " << graph.num_tasks() << " tasks)";
    }
  }
}

TEST(CrossPolicy, PolicyNameRoundTrip) {
  for (const sweep::PolicyKind kind : kAllPolicies) {
    EXPECT_EQ(sweep::policy_kind_from_string(sweep::to_string(kind)), kind);
  }
}

}  // namespace
}  // namespace dagsched
