// Cross-policy schedule-validity invariant: every policy the scheduler
// registry can construct must produce schedules that pass the shared
// validator (schedule_checks.hpp) on randomized instances spanning graph
// families, topologies and communication parameters.  This is the sweep's
// correctness floor: the ranking table is meaningless if any policy can
// emit an invalid schedule.  The suite enumerates
// sched::PolicyRegistry::instance() — a newly registered policy is
// covered automatically, with no parallel list to maintain.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "graph/generators.hpp"
#include "schedule_checks.hpp"
#include "sched/registry.hpp"
#include "sim/engine.hpp"
#include "topology/builders.hpp"
#include "util/rng.hpp"

namespace dagsched {
namespace {

/// A construction config sized for tests: annealers get short schedules
/// and a single chain so six rounds over nine policies stay fast.  Keys
/// are adjusted only where the descriptor declares them, so the shaping
/// works for any future policy too.
sched::PolicyConfig test_config(const std::string& name,
                                std::uint64_t seed) {
  const auto& registry = sched::PolicyRegistry::instance();
  sched::PolicyConfig config = registry.make_config(name);
  config.seed = seed;
  if (config.has_key("chains")) config.set_int("chains", 1);
  if (config.has_key("max_steps")) {
    config.set_int("max_steps", name == "gsa" ? 6 : 12);
  }
  return config;
}

TaskGraph random_graph(Rng& rng, int round) {
  if (round % 2 == 0) {
    gen::GnpDagOptions options;
    options.num_tasks = 10 + static_cast<int>(rng.uniform_index(20));
    options.edge_probability = 0.08 + 0.2 * rng.uniform01();
    options.seed = rng.next_u64();
    return gen::gnp_dag(options);
  }
  gen::LayeredDagOptions options;
  options.layers = 3 + static_cast<int>(rng.uniform_index(3));
  options.seed = rng.next_u64();
  return gen::layered_dag(options);
}

CommModel random_comm(Rng& rng, int round) {
  if (round % 5 == 4) return CommModel::disabled();
  CommModel comm = CommModel::paper_default();
  comm.sigma = us(rng.uniform_int(0, 12));
  comm.tau = us(rng.uniform_int(0, 12));
  comm.send_cpu = (round % 3 == 0)   ? SendCpu::PerMessage
                  : (round % 3 == 1) ? SendCpu::PerTaskOutput
                                     : SendCpu::Offloaded;
  return comm;
}

TEST(CrossPolicy, EveryRegisteredPolicyPassesTheSharedValidator) {
  const auto& registry = sched::PolicyRegistry::instance();
  const std::vector<std::string> names = registry.names();
  ASSERT_GE(names.size(), 9u) << "builtin policies went missing";

  Rng rng(0xC0FFEE);
  const Topology machines[] = {topo::hypercube(3), topo::ring(5),
                               topo::mesh(2, 3), topo::shared_bus(4)};
  for (int round = 0; round < 6; ++round) {
    const TaskGraph graph = random_graph(rng, round);
    const Topology& machine = machines[round % 4];
    const CommModel comm = random_comm(rng, round);
    for (const std::string& name : names) {
      const std::uint64_t seed = rng.next_u64();
      const std::unique_ptr<sched::ScheduledPolicy> policy =
          registry.make(name, test_config(name, seed));
      sched::PolicyRunOptions options;
      options.sim.record_trace = true;  // the validator needs the trace
      const sched::PolicyRunOutcome outcome =
          policy->run(graph, machine, comm, options);
      EXPECT_GT(outcome.result.makespan, 0);
      EXPECT_FALSE(outcome.timed_out);
      EXPECT_TRUE(schedule_is_valid(graph, machine, comm, outcome.result))
          << name << " on " << machine.name() << " (round " << round
          << ", " << graph.num_tasks() << " tasks)";
    }
  }
}

TEST(CrossPolicy, RegistryNamesAreUniqueAndSelfConsistent) {
  const auto& registry = sched::PolicyRegistry::instance();
  const std::vector<std::string> names = registry.names();
  for (std::size_t i = 0; i < names.size(); ++i) {
    EXPECT_EQ(registry.descriptor(names[i]).name, names[i]);
    for (std::size_t j = i + 1; j < names.size(); ++j) {
      EXPECT_NE(names[i], names[j]);
    }
  }
}

TEST(CrossPolicy, DeterministicPoliciesIgnoreTheSeed) {
  // The `deterministic` capability is a promise: two different seeds must
  // produce the same schedule.  Check it on one nontrivial instance so a
  // policy that secretly consumes randomness cannot keep the flag.
  const auto& registry = sched::PolicyRegistry::instance();
  Rng rng(0xFEED);
  const TaskGraph graph = random_graph(rng, 0);
  const Topology machine = topo::hypercube(3);
  const CommModel comm = CommModel::paper_default();
  for (const std::string& name : registry.names()) {
    if (!registry.descriptor(name).caps.deterministic) continue;
    const auto a =
        registry.make(name, test_config(name, 11))->run(graph, machine, comm);
    const auto b =
        registry.make(name, test_config(name, 77))->run(graph, machine, comm);
    EXPECT_EQ(a.result.makespan, b.result.makespan) << name;
    EXPECT_EQ(a.result.placement, b.result.placement) << name;
  }
}

TEST(CrossPolicy, SeededPoliciesAreReproducible) {
  // Every policy — rng-consuming or not — must replay bit-identically for
  // the same seed (the sweep determinism contract).
  const auto& registry = sched::PolicyRegistry::instance();
  Rng rng(0xBEEF);
  const TaskGraph graph = random_graph(rng, 1);
  const Topology machine = topo::ring(5);
  const CommModel comm = CommModel::paper_default();
  for (const std::string& name : registry.names()) {
    const auto a =
        registry.make(name, test_config(name, 42))->run(graph, machine, comm);
    const auto b =
        registry.make(name, test_config(name, 42))->run(graph, machine, comm);
    EXPECT_EQ(a.result.makespan, b.result.makespan) << name;
    EXPECT_EQ(a.result.placement, b.result.placement) << name;
  }
}

}  // namespace
}  // namespace dagsched
