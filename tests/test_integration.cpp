// End-to-end integration: the paper's qualitative claims asserted as
// tests, across the full pipeline (workload -> topology -> policy ->
// simulator -> validator -> comparison).

#include <gtest/gtest.h>

#include "core/sa_scheduler.hpp"
#include "graph/analysis.hpp"
#include "report/experiment.hpp"
#include "schedule_checks.hpp"
#include "topology/builders.hpp"
#include "workloads/registry.hpp"

namespace dagsched {
namespace {

struct Cell {
  const char* program;
  const char* topo_spec;
};

class PaperGrid : public ::testing::TestWithParam<Cell> {};

TEST_P(PaperGrid, SpeedupsAreWithinPhysicalBounds) {
  const auto [program, topo_spec] = GetParam();
  const workloads::Workload w = workloads::by_name(program);
  const Topology topology = topo::by_name(topo_spec);
  const GraphStats stats = compute_stats(w.graph);
  report::CompareOptions options;
  options.sa_seeds = 2;

  for (const bool with_comm : {false, true}) {
    const CommModel comm = with_comm ? CommModel::paper_default()
                                     : CommModel::disabled();
    const report::ComparisonRow row =
        report::compare_sa_hlf(program, w.graph, topology, comm, options);
    for (const double sp : {row.sa_speedup, row.hlf_speedup}) {
      EXPECT_GT(sp, 1.0) << program << " on " << topo_spec;
      EXPECT_LE(sp, std::min(stats.max_speedup,
                             static_cast<double>(topology.num_procs())) +
                        1e-9);
    }
    // Communication can only hurt.
    if (with_comm) {
      const report::ComparisonRow free_row = report::compare_sa_hlf(
          program, w.graph, topology, CommModel::disabled(), options);
      EXPECT_LE(row.sa_speedup, free_row.sa_speedup + 1e-9);
      EXPECT_LE(row.hlf_speedup, free_row.hlf_speedup + 1e-9);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Cells, PaperGrid,
    ::testing::Values(Cell{"NE", "hypercube8"}, Cell{"NE", "bus8"},
                      Cell{"NE", "ring9"}, Cell{"GJ", "hypercube8"},
                      Cell{"GJ", "bus8"}, Cell{"GJ", "ring9"},
                      Cell{"FFT", "hypercube8"}, Cell{"FFT", "bus8"},
                      Cell{"FFT", "ring9"}, Cell{"MM", "hypercube8"},
                      Cell{"MM", "bus8"}, Cell{"MM", "ring9"}),
    [](const ::testing::TestParamInfo<Cell>& info) {
      return std::string(info.param.program) + "_" +
             info.param.topo_spec;
    });

TEST(Table2Shape, SaNeverLosesWithComm) {
  // The paper's central result: with communication, SA's best-of-seeds
  // beats HLF on every (program, architecture) cell.
  report::CompareOptions options;
  options.sa_seeds = 3;
  for (const report::ComparisonRow& row : report::table2_sweep(options)) {
    if (row.with_comm) {
      EXPECT_GT(row.sa_speedup, row.hlf_speedup)
          << row.program << " on " << row.topology;
    } else {
      // Without communication SA matches HLF within 2%.
      EXPECT_NEAR(row.sa_speedup, row.hlf_speedup,
                  0.02 * row.hlf_speedup)
          << row.program << " on " << row.topology;
    }
  }
}

TEST(Table2Shape, BusBeatsRingUnderCommForEveryProgram) {
  // Distance-1 crossbar vs diameter-4 ring: routing and extra wire hops
  // make the ring strictly worse under the paper's comm model.
  report::CompareOptions options;
  options.sa_seeds = 2;
  for (const char* program : {"NE", "GJ", "FFT", "MM"}) {
    const workloads::Workload w = workloads::by_name(program);
    const CommModel comm = CommModel::paper_default();
    const auto bus_row = report::compare_sa_hlf(program, w.graph,
                                                topo::bus(8), comm, options);
    const auto ring_row = report::compare_sa_hlf(
        program, w.graph, topo::ring(9), comm, options);
    EXPECT_GT(bus_row.hlf_speedup * 1.001, ring_row.hlf_speedup * 8.0 / 9.0)
        << program;  // normalized per processor count
  }
}

TEST(Table2Shape, NeGainsGrowWithDiameter) {
  // NE's chain structure makes it the most placement-sensitive program:
  // the SA-over-HLF gain on the ring (diameter 4) must exceed the gain on
  // the bus (diameter 1) — the paper's 52.8% vs 11.5% pattern.
  const workloads::Workload w = workloads::by_name("NE");
  const CommModel comm = CommModel::paper_default();
  report::CompareOptions options;
  options.sa_seeds = 3;
  const auto bus_row =
      report::compare_sa_hlf("NE", w.graph, topo::bus(8), comm, options);
  const auto ring_row =
      report::compare_sa_hlf("NE", w.graph, topo::ring(9), comm, options);
  EXPECT_GT(ring_row.gain_pct(), bus_row.gain_pct());
}

TEST(FullPipeline, EveryTable2CellValidates) {
  // Re-run one SA seed per cell with tracing enabled and machine-check the
  // schedule.
  for (const workloads::Workload& w : workloads::paper_programs()) {
    for (const Topology& topology :
         {topo::hypercube(3), topo::bus(8), topo::ring(9)}) {
      for (const bool with_comm : {false, true}) {
        const CommModel comm = with_comm ? CommModel::paper_default()
                                         : CommModel::disabled();
        sa::SaScheduler scheduler;
        const sim::SimResult result =
            sim::simulate(w.graph, topology, comm, scheduler);
        EXPECT_TRUE(schedule_is_valid(w.graph, topology, comm, result))
            << w.graph.name() << " on " << topology.name()
            << (with_comm ? " with comm" : " w/o comm");
      }
    }
  }
}

TEST(FullPipeline, MessagesOnlyBetweenDistinctProcessors) {
  const workloads::Workload w = workloads::by_name("GJ");
  sa::SaScheduler scheduler;
  const sim::SimResult result = sim::simulate(
      w.graph, topo::hypercube(3), CommModel::paper_default(), scheduler);
  for (const sim::MessageRecord& msg : result.trace.messages) {
    EXPECT_NE(msg.src, msg.dst);
    EXPECT_EQ(result.placement[static_cast<std::size_t>(msg.producer)],
              msg.src);
    EXPECT_EQ(result.placement[static_cast<std::size_t>(msg.consumer)],
              msg.dst);
    EXPECT_GE(msg.delivered, msg.launched);
  }
}

TEST(FullPipeline, PacketRegimeResemblesPaper) {
  // §6a: "95 tasks ... assigned in 65 annealing packets.  On the average
  // there are 15 candidates for 1.46 free processors."  Our epoch regime
  // differs in detail but must be in the same family: packets on the order
  // of the task count, a small number of free processors per packet, and
  // multiple candidates competing.
  const workloads::Workload w = workloads::by_name("NE");
  sa::SaScheduler scheduler;
  sim::simulate(w.graph, topo::hypercube(3), CommModel::paper_default(),
                scheduler);
  const sa::SaRunStats& stats = scheduler.stats();
  EXPECT_GE(stats.packets, 40);
  EXPECT_LE(stats.packets, 95);
  EXPECT_GE(stats.mean_candidates(), 2.0);
  EXPECT_LE(stats.mean_idle_procs(), 4.0);
}

}  // namespace
}  // namespace dagsched
