// Text serialization: round-trips, format details, and parse errors; DOT
// export sanity.

#include <gtest/gtest.h>

#include "graph/dot.hpp"
#include "graph/generators.hpp"
#include "graph/serialize.hpp"

namespace dagsched {
namespace {

TEST(Serialize, RoundTripsSmallGraph) {
  TaskGraph g("demo");
  const TaskId a = g.add_task("alpha", 1234);
  const TaskId b = g.add_task("beta", 5678);
  g.add_edge(a, b, 42);
  const TaskGraph parsed = from_text(to_text(g));
  EXPECT_EQ(parsed.name(), "demo");
  EXPECT_EQ(parsed.num_tasks(), 2);
  EXPECT_EQ(parsed.task_name(0), "alpha");
  EXPECT_EQ(parsed.duration(1), 5678);
  EXPECT_EQ(parsed.edge_weight(0, 1), 42);
}

class SerializeSeeds : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SerializeSeeds, RoundTripsRandomGraphsExactly) {
  gen::LayeredDagOptions options;
  options.seed = GetParam();
  const TaskGraph g = gen::layered_dag(options);
  const std::string text = to_text(g);
  const TaskGraph parsed = from_text(text);
  EXPECT_EQ(to_text(parsed), text);  // fixpoint
  EXPECT_EQ(parsed.num_tasks(), g.num_tasks());
  EXPECT_EQ(parsed.num_edges(), g.num_edges());
  for (TaskId t = 0; t < g.num_tasks(); ++t) {
    EXPECT_EQ(parsed.duration(t), g.duration(t));
    EXPECT_EQ(parsed.task_name(t), g.task_name(t));
  }
  for (const Edge& e : g.edges()) {
    EXPECT_EQ(parsed.edge_weight(e.from, e.to), e.weight);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SerializeSeeds,
                         ::testing::Values(1, 7, 100, 9999));

TEST(Serialize, CommentsAndBlankLinesIgnored) {
  const std::string text =
      "# a comment\n"
      "taskgraph demo\n"
      "\n"
      "tasks 2\n"
      "0 100 first\n"
      "# interleaved comment\n"
      "1 200 second\n"
      "edges 1\n"
      "0 1 7\n";
  const TaskGraph g = from_text(text);
  EXPECT_EQ(g.num_tasks(), 2);
  EXPECT_EQ(g.edge_weight(0, 1), 7);
}

TEST(Serialize, NameWithSpacesIsSanitized) {
  TaskGraph g("my graph name");
  g.add_task("t", 1);
  const TaskGraph parsed = from_text(to_text(g));
  EXPECT_EQ(parsed.name(), "my_graph_name");
}

TEST(Serialize, TaskNamesMayContainSpaces) {
  TaskGraph g("x");
  g.add_task("compute row 7", 10);
  const TaskGraph parsed = from_text(to_text(g));
  EXPECT_EQ(parsed.task_name(0), "compute row 7");
}

TEST(SerializeErrors, ReportLineNumbers) {
  try {
    from_text("taskgraph x\ntasks 1\n5 10 wrong-id\nedges 0\n");
    FAIL() << "expected parse error";
  } catch (const std::runtime_error& err) {
    EXPECT_NE(std::string(err.what()).find("line 3"), std::string::npos);
  }
}

TEST(SerializeErrors, RejectMalformedDocuments) {
  EXPECT_THROW(from_text(""), std::runtime_error);
  EXPECT_THROW(from_text("nonsense"), std::runtime_error);
  EXPECT_THROW(from_text("taskgraph x\n"), std::runtime_error);
  EXPECT_THROW(from_text("taskgraph x\ntasks -1\n"), std::runtime_error);
  EXPECT_THROW(from_text("taskgraph x\ntasks 1\n0 10 t\n"),
               std::runtime_error);  // missing edges header
  EXPECT_THROW(from_text("taskgraph x\ntasks 1\n0 10 t\nedges 1\n"),
               std::runtime_error);  // missing edge line
  EXPECT_THROW(from_text("taskgraph x\ntasks 1\n0 10 t\nedges 1\n0 0 1\n"),
               std::runtime_error);  // self loop
  EXPECT_THROW(from_text("taskgraph x\ntasks 1\n0 10 t\nedges 0\nextra\n"),
               std::runtime_error);  // trailing garbage
  EXPECT_THROW(from_text("taskgraph x\ntasks 2\n0 10 a\n1 -5 b\nedges 0\n"),
               std::runtime_error);  // negative duration
}

TEST(SerializeFiles, WriteAndReadBack) {
  const TaskGraph g = gen::chain(4, 100, 5);
  const std::string path = ::testing::TempDir() + "/dagsched_graph.tg";
  ASSERT_TRUE(write_text_file(g, path));
  const TaskGraph parsed = read_text_file(path);
  EXPECT_EQ(to_text(parsed), to_text(g));
  EXPECT_THROW(read_text_file("/nonexistent/nowhere.tg"),
               std::runtime_error);
}

TEST(Dot, ContainsNodesEdgesAndLabels) {
  TaskGraph g("dotty");
  const TaskId a = g.add_task("start", us(std::int64_t{9}));
  const TaskId b = g.add_task("end", us(std::int64_t{3}));
  g.add_edge(a, b, us(std::int64_t{4}));
  const std::string dot = to_dot(g);
  EXPECT_NE(dot.find("digraph \"dotty\""), std::string::npos);
  EXPECT_NE(dot.find("n0 -> n1"), std::string::npos);
  EXPECT_NE(dot.find("start"), std::string::npos);
  EXPECT_NE(dot.find("9.00us"), std::string::npos);
  EXPECT_NE(dot.find("4.00us"), std::string::npos);
}

TEST(Dot, OptionsControlDecoration) {
  TaskGraph g("plain");
  const TaskId a = g.add_task("a", us(std::int64_t{1}));
  const TaskId b = g.add_task("b", us(std::int64_t{2}));
  g.add_edge(a, b, us(std::int64_t{3}));
  DotOptions options;
  options.show_durations = false;
  options.show_weights = false;
  const std::string dot = to_dot(g, options);
  EXPECT_EQ(dot.find("1.00us"), std::string::npos);
  EXPECT_EQ(dot.find("label=\"3.00us\""), std::string::npos);
}

TEST(Dot, RankByDepthEmitsRankGroups) {
  const TaskGraph g = gen::chain(3, 1, 0);
  DotOptions options;
  options.rank_by_depth = true;
  const std::string dot = to_dot(g, options);
  EXPECT_NE(dot.find("rank=same"), std::string::npos);
}

TEST(Dot, EscapesQuotesInNames) {
  TaskGraph g("quo\"ted");
  g.add_task("na\"me", 1);
  const std::string dot = to_dot(g);
  EXPECT_NE(dot.find("quo\\\"ted"), std::string::npos);
  EXPECT_NE(dot.find("na\\\"me"), std::string::npos);
}

}  // namespace
}  // namespace dagsched
