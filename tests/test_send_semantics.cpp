// Sender-side CPU semantics (CommModel::send_cpu) in detail, including the
// "messages launched while sigma is in flight wait for it" rule of
// PerTaskOutput, and trace bookkeeping under each model.

#include <gtest/gtest.h>

#include "sched/pinned.hpp"
#include "sim/engine.hpp"
#include "schedule_checks.hpp"
#include "topology/builders.hpp"

namespace dagsched {
namespace {

sim::SimResult run(const TaskGraph& graph, const Topology& topology,
                   const CommModel& comm, std::vector<ProcId> mapping) {
  sched::PinnedScheduler policy(std::move(mapping));
  sim::SimResult result = sim::simulate(graph, topology, comm, policy);
  EXPECT_TRUE(schedule_is_valid(graph, topology, comm, result));
  return result;
}

/// a(10us) on P0 with two consumers assigned simultaneously to P1, P2.
struct Broadcast {
  TaskGraph graph;
  TaskId a, c, d;
  Broadcast() {
    a = graph.add_task("a", us(std::int64_t{10}));
    c = graph.add_task("c", us(std::int64_t{10}));
    d = graph.add_task("d", us(std::int64_t{10}));
    graph.add_edge(a, c, us(std::int64_t{4}));
    graph.add_edge(a, d, us(std::int64_t{4}));
  }
};

TEST(SendSemantics, PerTaskOutputPaysOneSigmaForTheBatch) {
  Broadcast b;
  const auto result = run(b.graph, topo::bus(3),
                          CommModel::paper_default(), {0, 1, 2});
  int sends = 0;
  for (const sim::CommSegment& seg : result.trace.comm_segments) {
    if (seg.kind == sim::CommKind::Send) ++sends;
  }
  EXPECT_EQ(sends, 1);
  // Both messages wait for the single sigma (10-17), then transfer on
  // their private crossbar channels in parallel: both start 17.
  for (const sim::TransferSegment& t : result.trace.transfers) {
    EXPECT_EQ(t.start, us(std::int64_t{17}));
  }
}

TEST(SendSemantics, SecondConsumerAssignedLaterSkipsSigma) {
  // Force the consumers to be assigned at different epochs by giving P2 a
  // filler task: d's assignment happens only when the filler completes,
  // well after a's sigma was paid -> d's message goes straight to the
  // wire.
  Broadcast b;
  const TaskId filler = b.graph.add_task("filler", us(std::int64_t{40}));
  const auto result = run(b.graph, topo::bus(3),
                          CommModel::paper_default(), {0, 1, 2, 2});
  (void)filler;
  int sends = 0;
  for (const sim::CommSegment& seg : result.trace.comm_segments) {
    if (seg.kind == sim::CommKind::Send) ++sends;
  }
  EXPECT_EQ(sends, 1);
  // d assigned at t=40 (filler done); transfer immediately at 40, receive
  // 44-53, d runs 53-63.
  EXPECT_EQ(result.trace.task_record(b.d).started, us(std::int64_t{53}));
}

TEST(SendSemantics, PerMessagePaysSigmaTwice) {
  Broadcast b;
  CommModel comm = CommModel::paper_default();
  comm.send_cpu = SendCpu::PerMessage;
  const auto result = run(b.graph, topo::bus(3), comm, {0, 1, 2});
  int sends = 0;
  for (const sim::CommSegment& seg : result.trace.comm_segments) {
    if (seg.kind == sim::CommKind::Send) ++sends;
  }
  EXPECT_EQ(sends, 2);
}

TEST(SendSemantics, OffloadedPaysNone) {
  Broadcast b;
  CommModel comm = CommModel::paper_default();
  comm.send_cpu = SendCpu::Offloaded;
  const auto result = run(b.graph, topo::bus(3), comm, {0, 1, 2});
  for (const sim::CommSegment& seg : result.trace.comm_segments) {
    EXPECT_NE(seg.kind, sim::CommKind::Send);
  }
  // Transfers start at task completion: 10-14; receive 14-23; run 23-33.
  EXPECT_EQ(result.trace.task_record(b.c).started, us(std::int64_t{23}));
  EXPECT_EQ(result.makespan, us(std::int64_t{33}));
}

TEST(SendSemantics, ModelsOrderedByCost) {
  // For the same broadcast, makespans order: Offloaded <= PerTaskOutput <=
  // PerMessage.
  Broadcast b;
  std::vector<Time> makespans;
  for (const SendCpu model :
       {SendCpu::Offloaded, SendCpu::PerTaskOutput, SendCpu::PerMessage}) {
    CommModel comm = CommModel::paper_default();
    comm.send_cpu = model;
    makespans.push_back(
        run(b.graph, topo::bus(3), comm, {0, 1, 2}).makespan);
  }
  EXPECT_LE(makespans[0], makespans[1]);
  EXPECT_LE(makespans[1], makespans[2]);
}

TEST(SendSemantics, SigmaPreemptsTheProducersNextWork) {
  // After a completes, P0 immediately starts another task; the sigma for
  // a's consumer (assigned at the same epoch) preempts it.
  TaskGraph g;
  const TaskId a = g.add_task("a", us(std::int64_t{10}));
  const TaskId next = g.add_task("next", us(std::int64_t{10}));
  const TaskId c = g.add_task("c", us(std::int64_t{10}));
  g.add_edge(a, c, us(std::int64_t{4}));
  g.add_edge(a, next, 0);  // same-proc edge: no message
  const auto result =
      run(g, topo::line(2), CommModel::paper_default(), {0, 0, 1});
  // At t=10: next -> P0 (local input, starts), c -> P1 (message).  The
  // sigma job and `next` contend for P0: comm handling wins, so next runs
  // 17-27.
  EXPECT_EQ(result.trace.task_record(next).finished, us(std::int64_t{27}));
  // c: 17 (sigma end) + 4 + 9 = 30 start.
  EXPECT_EQ(result.trace.task_record(c).started, us(std::int64_t{30}));
}

TEST(SendSemantics, TotalCommTimeAccountsAllHandling) {
  Broadcast b;
  const auto result = run(b.graph, topo::bus(3),
                          CommModel::paper_default(), {0, 1, 2});
  // One sigma (7) + two receives (9 each) = 25us of CPU comm handling.
  EXPECT_EQ(result.total_comm_time, us(std::int64_t{25}));
}

}  // namespace
}  // namespace dagsched
