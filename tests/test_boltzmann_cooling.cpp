// Boltzmann acceptance (eq. 1/2) and cooling schedules.

#include <gtest/gtest.h>

#include <cmath>

#include "core/boltzmann.hpp"
#include "core/cooling.hpp"

namespace dagsched::sa {
namespace {

TEST(Boltzmann, HalfAtInfiniteTemperature) {
  // B(F, inf) = 0.5 for any finite cost difference (eq. 2, first limit).
  for (const double delta : {-1000.0, -1.0, 0.0, 1.0, 1000.0}) {
    EXPECT_NEAR(boltzmann_acceptance(delta, 1e30), 0.5, 1e-6) << delta;
  }
}

TEST(Boltzmann, StepFunctionAtZeroTemperature) {
  // B(F, 0): accept iff F < 0 (eq. 2, second limit).
  EXPECT_DOUBLE_EQ(boltzmann_acceptance(-0.001, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(boltzmann_acceptance(0.0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(boltzmann_acceptance(0.001, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(boltzmann_acceptance(-5.0, -1.0), 1.0);  // temp<0 = limit
}

TEST(Boltzmann, ExactSigmoidValues) {
  // B(dF, T) = 1 / (1 + exp(dF / T)).
  EXPECT_DOUBLE_EQ(boltzmann_acceptance(0.0, 1.0), 0.5);
  EXPECT_NEAR(boltzmann_acceptance(1.0, 1.0), 1.0 / (1.0 + std::exp(1.0)),
              1e-12);
  EXPECT_NEAR(boltzmann_acceptance(-2.0, 4.0),
              1.0 / (1.0 + std::exp(-0.5)), 1e-12);
}

TEST(Boltzmann, MonotoneInDelta) {
  double previous = 1.0;
  for (double delta = -5.0; delta <= 5.0; delta += 0.25) {
    const double p = boltzmann_acceptance(delta, 0.7);
    EXPECT_LE(p, previous);
    previous = p;
  }
}

TEST(Boltzmann, ImprovingMovesMoreLikelyAtLowerTemperature) {
  const double hot = boltzmann_acceptance(-1.0, 10.0);
  const double cold = boltzmann_acceptance(-1.0, 0.1);
  EXPECT_GT(cold, hot);
  const double worsen_hot = boltzmann_acceptance(1.0, 10.0);
  const double worsen_cold = boltzmann_acceptance(1.0, 0.1);
  EXPECT_LT(worsen_cold, worsen_hot);
}

TEST(Boltzmann, OverflowSafe) {
  EXPECT_DOUBLE_EQ(boltzmann_acceptance(1e308, 1.0), 0.0);
  EXPECT_DOUBLE_EQ(boltzmann_acceptance(-1e308, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(boltzmann_acceptance(1.0, 1e-308), 0.0);
}

TEST(Cooling, GeometricDecay) {
  CoolingSchedule s;
  s.kind = CoolingKind::Geometric;
  s.t0 = 2.0;
  s.alpha = 0.5;
  s.t_min = 1e-6;
  EXPECT_DOUBLE_EQ(s.temperature(0), 2.0);
  EXPECT_DOUBLE_EQ(s.temperature(1), 1.0);
  EXPECT_DOUBLE_EQ(s.temperature(3), 0.25);
}

TEST(Cooling, LinearReachesFloor) {
  CoolingSchedule s;
  s.kind = CoolingKind::Linear;
  s.t0 = 1.0;
  s.max_steps = 10;
  s.t_min = 0.01;
  EXPECT_DOUBLE_EQ(s.temperature(0), 1.0);
  EXPECT_DOUBLE_EQ(s.temperature(5), 0.5);
  EXPECT_DOUBLE_EQ(s.temperature(10), 0.01);  // clamped at the floor
}

TEST(Cooling, LogarithmicStartsAtT0) {
  CoolingSchedule s;
  s.kind = CoolingKind::Logarithmic;
  s.t0 = 3.0;
  EXPECT_NEAR(s.temperature(0), 3.0, 1e-9);  // ln(e) = 1
  EXPECT_LT(s.temperature(10), 3.0);
}

TEST(Cooling, ConstantStaysPut) {
  CoolingSchedule s;
  s.kind = CoolingKind::Constant;
  s.t0 = 0.7;
  EXPECT_DOUBLE_EQ(s.temperature(0), 0.7);
  EXPECT_DOUBLE_EQ(s.temperature(100), 0.7);
}

TEST(Cooling, AllSchedulesAreNonIncreasingAndFloored) {
  for (const CoolingKind kind :
       {CoolingKind::Geometric, CoolingKind::Linear,
        CoolingKind::Logarithmic, CoolingKind::Constant}) {
    CoolingSchedule s;
    s.kind = kind;
    s.t0 = 4.0;
    s.t_min = 0.05;
    s.max_steps = 50;
    double previous = s.temperature(0);
    for (int step = 1; step < 60; ++step) {
      const double t = s.temperature(step);
      EXPECT_LE(t, previous + 1e-12) << to_string(kind) << " step " << step;
      EXPECT_GE(t, s.t_min);
      previous = t;
    }
  }
}

TEST(Cooling, Validation) {
  CoolingSchedule s;
  s.t0 = 0.0;
  EXPECT_THROW(s.validate(), std::invalid_argument);
  s = CoolingSchedule{};
  s.alpha = 1.0;
  EXPECT_THROW(s.validate(), std::invalid_argument);
  s = CoolingSchedule{};
  s.max_steps = 0;
  EXPECT_THROW(s.validate(), std::invalid_argument);
  s = CoolingSchedule{};
  EXPECT_NO_THROW(s.validate());
  EXPECT_THROW(s.temperature(-1), std::invalid_argument);
}

TEST(Cooling, Names) {
  EXPECT_EQ(to_string(CoolingKind::Geometric), "geometric");
  EXPECT_EQ(to_string(CoolingKind::Linear), "linear");
  EXPECT_EQ(to_string(CoolingKind::Logarithmic), "logarithmic");
  EXPECT_EQ(to_string(CoolingKind::Constant), "constant");
}

}  // namespace
}  // namespace dagsched::sa
