// Graph analysis: topological order, levels, critical path, statistics.

#include <gtest/gtest.h>

#include "graph/analysis.hpp"
#include "graph/generators.hpp"

namespace dagsched {
namespace {

/// a(10) -> b(20) -> d(40); a -> c(30) -> d; critical path a,c,d = 80us.
TaskGraph make_diamond() {
  TaskGraph g("diamond4");
  const TaskId a = g.add_task("a", us(std::int64_t{10}));
  const TaskId b = g.add_task("b", us(std::int64_t{20}));
  const TaskId c = g.add_task("c", us(std::int64_t{30}));
  const TaskId d = g.add_task("d", us(std::int64_t{40}));
  g.add_edge(a, b, us(std::int64_t{5}));
  g.add_edge(a, c, us(std::int64_t{6}));
  g.add_edge(b, d, us(std::int64_t{7}));
  g.add_edge(c, d, us(std::int64_t{8}));
  return g;
}

TEST(TopologicalOrder, RespectsEdgesAndIsDeterministic) {
  const TaskGraph g = make_diamond();
  const auto order = topological_order(g);
  ASSERT_EQ(order.size(), 4u);
  std::vector<int> position(4);
  for (int i = 0; i < 4; ++i) {
    position[static_cast<std::size_t>(order[static_cast<std::size_t>(i)])] =
        i;
  }
  for (const Edge& e : g.edges()) {
    EXPECT_LT(position[static_cast<std::size_t>(e.from)],
              position[static_cast<std::size_t>(e.to)]);
  }
  // Smallest-id-first among ready tasks: a, b, c, d here.
  EXPECT_EQ(order, (std::vector<TaskId>{0, 1, 2, 3}));
}

TEST(TopologicalOrder, ThrowsOnCycle) {
  TaskGraph g;
  const TaskId a = g.add_task("a", 1);
  const TaskId b = g.add_task("b", 1);
  g.add_edge(a, b, 0);
  g.add_edge(b, a, 0);
  EXPECT_THROW(topological_order(g), std::invalid_argument);
}

TEST(TaskLevels, MatchesHandComputation) {
  const TaskGraph g = make_diamond();
  const auto levels = task_levels(g);
  // level(d) = 40; level(b) = 20+40 = 60; level(c) = 30+40 = 70;
  // level(a) = 10 + max(60, 70) = 80.
  EXPECT_EQ(levels[3], us(std::int64_t{40}));
  EXPECT_EQ(levels[1], us(std::int64_t{60}));
  EXPECT_EQ(levels[2], us(std::int64_t{70}));
  EXPECT_EQ(levels[0], us(std::int64_t{80}));
}

TEST(TaskLevels, ExcludeCommunication) {
  const TaskGraph g = make_diamond();
  const auto plain = task_levels(g);
  const auto with_comm = task_levels_with_comm(g);
  // With comm: level(c) = 30 + 8 + 40 = 78; level(a) = 10+6+78 = 94.
  EXPECT_EQ(with_comm[2], us(std::int64_t{78}));
  EXPECT_EQ(with_comm[0], us(std::int64_t{94}));
  for (TaskId t = 0; t < g.num_tasks(); ++t) {
    EXPECT_GE(with_comm[static_cast<std::size_t>(t)],
              plain[static_cast<std::size_t>(t)]);
  }
}

TEST(TaskLevels, LeafLevelEqualsOwnDuration) {
  const TaskGraph g = make_diamond();
  const auto levels = task_levels(g);
  for (const TaskId leaf : g.leaves()) {
    EXPECT_EQ(levels[static_cast<std::size_t>(leaf)], g.duration(leaf));
  }
}

TEST(TopLevels, MatchesHandComputation) {
  const TaskGraph g = make_diamond();
  const auto top = top_levels(g);
  EXPECT_EQ(top[0], 0);
  EXPECT_EQ(top[1], us(std::int64_t{10}));
  EXPECT_EQ(top[2], us(std::int64_t{10}));
  EXPECT_EQ(top[3], us(std::int64_t{40}));  // via c: 10 + 30
}

TEST(CriticalPath, FindsLongestChain) {
  const TaskGraph g = make_diamond();
  const CriticalPath cp = critical_path(g);
  EXPECT_EQ(cp.length, us(std::int64_t{80}));
  EXPECT_EQ(cp.tasks, (std::vector<TaskId>{0, 2, 3}));
}

TEST(CriticalPath, PathDurationsSumToLength) {
  const TaskGraph g = gen::layered_dag({});
  const CriticalPath cp = critical_path(g);
  Time sum = 0;
  for (const TaskId t : cp.tasks) sum += g.duration(t);
  EXPECT_EQ(sum, cp.length);
  // Consecutive path tasks are connected.
  for (std::size_t i = 0; i + 1 < cp.tasks.size(); ++i) {
    EXPECT_TRUE(g.has_edge(cp.tasks[i], cp.tasks[i + 1]));
  }
}

TEST(CriticalPath, SingleTask) {
  TaskGraph g;
  g.add_task("only", us(std::int64_t{7}));
  const CriticalPath cp = critical_path(g);
  EXPECT_EQ(cp.length, us(std::int64_t{7}));
  EXPECT_EQ(cp.tasks.size(), 1u);
}

TEST(GraphDepth, CountsTasksOnLongestChain) {
  EXPECT_EQ(graph_depth(make_diamond()), 3);
  EXPECT_EQ(graph_depth(gen::chain(10, 5, 0)), 10);
  EXPECT_EQ(graph_depth(gen::independent(5, 5)), 1);
}

TEST(GraphStats, DiamondNumbers) {
  const GraphStats s = compute_stats(make_diamond());
  EXPECT_EQ(s.tasks, 4);
  EXPECT_EQ(s.edges, 4);
  EXPECT_EQ(s.roots, 1);
  EXPECT_EQ(s.leaves, 1);
  EXPECT_EQ(s.depth, 3);
  EXPECT_EQ(s.total_work, us(std::int64_t{100}));
  EXPECT_EQ(s.total_comm, us(std::int64_t{26}));
  EXPECT_DOUBLE_EQ(s.avg_duration_us, 25.0);
  EXPECT_DOUBLE_EQ(s.avg_comm_us, 6.5);   // total comm / tasks
  EXPECT_DOUBLE_EQ(s.avg_edge_comm_us, 6.5);
  EXPECT_DOUBLE_EQ(s.cc_ratio_pct, 26.0);
  EXPECT_DOUBLE_EQ(s.max_speedup, 1.25);
}

TEST(GraphStats, MaxSpeedupIsWorkOverCriticalPath) {
  const TaskGraph g = gen::diamond(8, us(std::int64_t{10}),
                                   us(std::int64_t{10}),
                                   us(std::int64_t{10}), 0);
  const GraphStats s = compute_stats(g);
  // 10 tasks x 10us work, CP = 3 tasks = 30us.
  EXPECT_DOUBLE_EQ(s.max_speedup, 100.0 / 30.0);
}

TEST(ParallelismProfile, ChainIsFlatOne) {
  const TaskGraph g = gen::chain(5, us(std::int64_t{10}), 0);
  const auto profile = parallelism_profile(g, 10);
  for (const double p : profile) EXPECT_NEAR(p, 1.0, 1e-9);
}

TEST(ParallelismProfile, DiamondShowsMiddleWidth) {
  const TaskGraph g = gen::diamond(6, us(std::int64_t{10}),
                                   us(std::int64_t{10}),
                                   us(std::int64_t{10}), 0);
  const auto profile = parallelism_profile(g, 3);
  EXPECT_NEAR(profile[0], 1.0, 1e-9);
  EXPECT_NEAR(profile[1], 6.0, 1e-9);
  EXPECT_NEAR(profile[2], 1.0, 1e-9);
}

TEST(ParallelismProfile, RejectsBadBinCount) {
  EXPECT_THROW(parallelism_profile(make_diamond(), 0),
               std::invalid_argument);
}

}  // namespace
}  // namespace dagsched
