// Negative tests for the schedule validator: corrupt a known-good trace in
// every dimension the validator checks and assert the corruption is
// caught.  (The positive direction — valid runs produce no violations — is
// covered by the property sweeps.)

#include <gtest/gtest.h>

#include "sched/pinned.hpp"
#include "sim/engine.hpp"
#include "sim/validate.hpp"
#include "topology/builders.hpp"

namespace dagsched {
namespace {

struct Fixture {
  TaskGraph graph;
  Topology topology = topo::line(2);
  CommModel comm = CommModel::paper_default();
  sim::SimResult result;

  Fixture() {
    const TaskId a = graph.add_task("a", us(std::int64_t{10}));
    const TaskId b = graph.add_task("b", us(std::int64_t{10}));
    graph.add_edge(a, b, us(std::int64_t{4}));
    sched::PinnedScheduler policy({0, 1});
    result = sim::simulate(graph, topology, comm, policy);
  }

  std::vector<std::string> validate() const {
    return sim::validate_run(graph, topology, comm, result);
  }
};

TEST(Validate, CleanRunHasNoViolations) {
  Fixture f;
  EXPECT_TRUE(f.validate().empty());
}

TEST(Validate, DetectsMakespanMismatch) {
  Fixture f;
  f.result.makespan += 1;
  EXPECT_FALSE(f.validate().empty());
}

TEST(Validate, DetectsPlacementRecordMismatch) {
  Fixture f;
  f.result.placement[0] = 1;  // record says P0
  EXPECT_FALSE(f.validate().empty());
}

TEST(Validate, DetectsMissingSegments) {
  Fixture f;
  f.result.trace.task_segments.clear();
  EXPECT_FALSE(f.validate().empty());
}

TEST(Validate, DetectsWrongExecutedDuration) {
  Fixture f;
  for (sim::TaskSegment& seg : f.result.trace.task_segments) {
    if (seg.task == 0) seg.end += 5;  // executed more than the duration
  }
  EXPECT_FALSE(f.validate().empty());
}

TEST(Validate, DetectsDoubleCompletion) {
  Fixture f;
  // Duplicate the completing segment of task 0 (also breaks tiling).
  for (const sim::TaskSegment seg : f.result.trace.task_segments) {
    if (seg.task == 0 && seg.completes) {
      f.result.trace.task_segments.push_back(seg);
      break;
    }
  }
  EXPECT_FALSE(f.validate().empty());
}

TEST(Validate, DetectsProcessorOverlap) {
  Fixture f;
  // Clone a's segment onto the same processor at the same time as a comm
  // segment... simpler: shift b's segment to overlap the receive handling
  // on P1 (receive 21-30, b runs 30-40 -> move b to 25).
  for (sim::TaskSegment& seg : f.result.trace.task_segments) {
    if (seg.task == 1) {
      seg.start -= us(std::int64_t{5});
      seg.end -= us(std::int64_t{5});
    }
  }
  // Keep the record envelope consistent so only the overlap fires.
  f.result.trace.tasks[1].started -= us(std::int64_t{5});
  f.result.trace.tasks[1].finished -= us(std::int64_t{5});
  const auto violations = f.validate();
  bool found_overlap = false;
  for (const std::string& v : violations) {
    if (v.find("overlap") != std::string::npos) found_overlap = true;
  }
  EXPECT_TRUE(found_overlap);
}

TEST(Validate, DetectsPrecedenceViolation) {
  Fixture f;
  // Pretend b started before a finished.
  f.result.trace.tasks[1].assigned = 0;
  f.result.trace.tasks[1].started = 0;
  EXPECT_FALSE(f.validate().empty());
}

TEST(Validate, DetectsMissingMessageForRemoteEdge) {
  Fixture f;
  f.result.trace.messages.clear();
  bool found = false;
  for (const std::string& v : f.validate()) {
    if (v.find("without a message") != std::string::npos) found = true;
  }
  EXPECT_TRUE(found);
}

TEST(Validate, DetectsStartBeforeDelivery) {
  Fixture f;
  for (sim::MessageRecord& msg : f.result.trace.messages) {
    msg.delivered += us(std::int64_t{100});
  }
  bool found = false;
  for (const std::string& v : f.validate()) {
    if (v.find("before delivery") != std::string::npos) found = true;
  }
  EXPECT_TRUE(found);
}

TEST(Validate, DetectsChannelOverlap) {
  Fixture f;
  // Duplicate the single transfer: same channel, same interval.
  ASSERT_FALSE(f.result.trace.transfers.empty());
  f.result.trace.transfers.push_back(f.result.trace.transfers.front());
  bool found = false;
  for (const std::string& v : f.validate()) {
    if (v.find("channel") != std::string::npos &&
        v.find("overlap") != std::string::npos) {
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(Validate, DetectsTransferOverMissingLink) {
  Fixture f;
  ASSERT_FALSE(f.result.trace.transfers.empty());
  // Rewrite the transfer to claim a hop between non-adjacent processors.
  // line(2) has only P0-P1; use an out-of-pattern pair by extending the
  // machine view: validate against a 3-node line where 0-2 is not a link.
  Fixture g;
  g.topology = topo::line(3);
  sched::PinnedScheduler policy({0, 1});
  g.result = sim::simulate(g.graph, g.topology, g.comm, policy);
  ASSERT_FALSE(g.result.trace.transfers.empty());
  g.result.trace.transfers.front().from = 0;
  g.result.trace.transfers.front().to = 2;
  bool found = false;
  for (const std::string& v :
       sim::validate_run(g.graph, g.topology, g.comm, g.result)) {
    if (v.find("missing link") != std::string::npos) found = true;
  }
  EXPECT_TRUE(found);
}

TEST(Validate, DetectsSegmentOnWrongProcessor) {
  Fixture f;
  for (sim::TaskSegment& seg : f.result.trace.task_segments) {
    if (seg.task == 0) seg.proc = 1;
  }
  EXPECT_FALSE(f.validate().empty());
}

TEST(Validate, DetectsNonMonotoneRecord) {
  Fixture f;
  f.result.trace.tasks[0].assigned =
      f.result.trace.tasks[0].finished + 1;
  EXPECT_FALSE(f.validate().empty());
}

}  // namespace
}  // namespace dagsched
