// Fault-injection layer: determinism of fault timelines, recovery
// semantics (crash-kill-and-re-execute, timeout + backoff retransmission,
// structured retry-exhaustion failure), the fault-aware validator over
// every registry policy, and the sweep-level robustness surface — the
// faulted summary JSON must stay byte-identical across runs and thread
// counts exactly like the zero-fault artifact.

#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "graph/generators.hpp"
#include "sched/heft.hpp"
#include "sched/hlf.hpp"
#include "sched/pinned.hpp"
#include "sched/registry.hpp"
#include "sched/repin.hpp"
#include "sim/engine.hpp"
#include "sim/faults.hpp"
#include "sim/validate.hpp"
#include "sweep/runner.hpp"
#include "sweep/spec.hpp"
#include "sweep/summary.hpp"
#include "topology/builders.hpp"
#include "util/rng.hpp"

namespace dagsched {
namespace {

// ---------------------------------------------------------------------------
// Fault timeline determinism.

TEST(FaultModel, WindowsAreAStableFunctionOfSeedAndEntity) {
  sim::FaultSpec spec;
  spec.machine_mtbf = us(std::int64_t{120});
  spec.link_mtbf = us(std::int64_t{90});
  spec.link_drop_prob = 0.5;
  spec.seed = 42;
  const Topology ring = topo::ring(4);
  const sim::FaultModel a(spec, ring);
  const sim::FaultModel b(spec, ring);

  const Time horizon = us(std::int64_t{5000});
  for (ProcId p = 0; p < 4; ++p) {
    const auto wa = a.machine_windows(p, horizon);
    const auto wb = b.machine_windows(p, horizon);
    ASSERT_EQ(wa.size(), wb.size());
    ASSERT_FALSE(wa.empty()) << "proc " << p << " drew no crash windows";
    for (std::size_t i = 0; i < wa.size(); ++i) {
      EXPECT_EQ(wa[i].begin, wb[i].begin);
      EXPECT_EQ(wa[i].end, wb[i].end);
      EXPECT_LT(wa[i].begin, wa[i].end);
    }
  }
}

TEST(FaultModel, HorizonPrefixesAgree) {
  // A longer horizon must extend — never rewrite — the window sequence, or
  // checkpoint/resume would diverge from a straight run.
  sim::FaultSpec spec;
  spec.machine_mtbf = us(std::int64_t{100});
  spec.seed = 7;
  const Topology ring = topo::ring(3);
  const sim::FaultModel model(spec, ring);
  const auto shorter = model.machine_windows(1, us(std::int64_t{1000}));
  const auto longer = model.machine_windows(1, us(std::int64_t{4000}));
  ASSERT_LE(shorter.size(), longer.size());
  for (std::size_t i = 0; i < shorter.size(); ++i) {
    EXPECT_EQ(shorter[i].begin, longer[i].begin);
    EXPECT_EQ(shorter[i].end, longer[i].end);
  }
}

TEST(FaultModel, StreamsAreIndependentPerEntity) {
  sim::FaultSpec spec;
  spec.machine_mtbf = us(std::int64_t{100});
  spec.seed = 7;
  const sim::FaultModel model(spec, topo::ring(3));
  const auto w0 = model.machine_windows(0, us(std::int64_t{2000}));
  const auto w1 = model.machine_windows(1, us(std::int64_t{2000}));
  ASSERT_FALSE(w0.empty());
  ASSERT_FALSE(w1.empty());
  EXPECT_NE(w0[0].begin, w1[0].begin)
      << "two processors drew the same timeline — streams are shared";
}

TEST(FaultSpec, ValidateRejectsNonsense) {
  sim::FaultSpec spec;
  spec.machine_mtbf = us(std::int64_t{100});
  spec.machine_mttr = 0;
  EXPECT_THROW(spec.validate(), std::invalid_argument);
  spec = {};
  spec.link_mtbf = us(std::int64_t{100});
  spec.link_drop_prob = 1.5;
  EXPECT_THROW(spec.validate(), std::invalid_argument);
  spec = {};
  spec.max_retries = -1;
  EXPECT_THROW(spec.validate(), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Engine recovery semantics.

/// Faulted-vs-faulted reproducibility: the full result surface of a run
/// under an active FaultSpec is a pure function of its inputs.
TEST(FaultEngine, FaultedRunsAreReproducible) {
  const TaskGraph graph = gen::layered_dag({});
  const Topology ring = topo::ring(4);
  const CommModel comm = CommModel::paper_default();
  sim::FaultSpec faults;
  faults.machine_mtbf = us(std::int64_t{150});
  faults.stall_mtbf = us(std::int64_t{200});
  faults.link_mtbf = us(std::int64_t{180});
  faults.link_drop_prob = 0.5;
  faults.seed = 99;

  sim::SimOptions options;
  options.faults = &faults;
  options.record_trace = true;
  sched::HlfScheduler a;
  sched::HlfScheduler b;
  const sim::SimResult ra = sim::simulate(graph, ring, comm, a, options);
  const sim::SimResult rb = sim::simulate(graph, ring, comm, b, options);
  EXPECT_EQ(ra.makespan, rb.makespan);
  EXPECT_EQ(ra.placement, rb.placement);
  EXPECT_EQ(ra.failed, rb.failed);
  EXPECT_EQ(ra.num_retries, rb.num_retries);
  EXPECT_EQ(ra.num_task_restarts, rb.num_task_restarts);
  EXPECT_EQ(ra.total_stall_time, rb.total_stall_time);
  EXPECT_EQ(ra.trace.task_segments.size(), rb.trace.task_segments.size());
  EXPECT_EQ(ra.trace.faults.size(), rb.trace.faults.size());
  EXPECT_EQ(ra.trace.retries.size(), rb.trace.retries.size());
}

/// Golden crash-mid-task run: a single processor executing a chain under
/// aggressive crash windows must lose work and re-execute it.  The exact
/// makespan is pinned — any engine change that shifts crash handling by a
/// nanosecond fails loudly here.
constexpr Time kCrashGoldenMakespan = 232041;

TEST(FaultEngine, CrashMidTaskKillsAndReExecutes) {
  // 4 x 50us chain on one effective processor; crashes every ~100us.
  const TaskGraph graph =
      gen::chain(4, us(std::int64_t{50}), us(std::int64_t{1}));
  const Topology line = topo::line(2);
  const CommModel comm = CommModel::disabled();
  sim::FaultSpec faults;
  faults.machine_mtbf = us(std::int64_t{100});
  faults.machine_mttr = us(std::int64_t{30});
  faults.seed = 5;

  sched::HlfScheduler zero_fault_policy;
  const sim::SimResult base =
      sim::simulate(graph, line, comm, zero_fault_policy);
  ASSERT_EQ(base.makespan, us(std::int64_t{200}));
  ASSERT_EQ(base.num_task_restarts, 0);

  sim::SimOptions options;
  options.faults = &faults;
  options.record_trace = true;
  sched::HlfScheduler policy;
  const sim::SimResult result =
      sim::simulate(graph, line, comm, policy, options);
  EXPECT_FALSE(result.failed);
  EXPECT_GT(result.num_task_restarts, 0)
      << "no crash ever landed mid-task; tune the MTBF";
  EXPECT_GT(result.makespan, base.makespan);
  // Pinned golden value (tier-1): crash recovery must replay
  // bit-identically forever.
  EXPECT_EQ(result.makespan, kCrashGoldenMakespan);
  EXPECT_TRUE(
      sim::validate_faulty_run(graph, line, comm, faults, result).empty());
}

/// Golden retry-exhaustion run: producer and consumer pinned across a link
/// that drops every transfer while down; the sender's retries exhaust and
/// the run reports a structured SimFailure instead of aborting.
TEST(FaultEngine, RetryExhaustionIsAStructuredFailure) {
  const TaskGraph graph =
      gen::chain(2, us(std::int64_t{20}), us(std::int64_t{10}));
  const Topology line = topo::line(2);
  CommModel comm = CommModel::paper_default();
  sim::FaultSpec faults;
  faults.link_mtbf = us(std::int64_t{10});
  faults.link_mttr = us(std::int64_t{100000});  // down for the whole run
  faults.link_drop_prob = 1.0;
  faults.msg_timeout = us(std::int64_t{30});
  faults.retry_backoff = us(std::int64_t{5});
  faults.max_retries = 2;
  faults.seed = 3;

  sched::PinnedScheduler pinned({0, 1});
  sim::SimOptions options;
  options.faults = &faults;
  const sim::SimResult result =
      sim::simulate(graph, line, comm, pinned, options);
  ASSERT_TRUE(result.failed)
      << "the link never dropped the message; tune the windows";
  EXPECT_EQ(result.failure.producer, 0);
  EXPECT_EQ(result.failure.consumer, 1);
  EXPECT_EQ(result.failure.attempts, faults.max_retries + 1);
  EXPECT_GT(result.failure.when, 0);
  EXPECT_EQ(result.num_retries, faults.max_retries);
}

TEST(FaultEngine, ZeroFaultSpecPointerIsAFastPathNoOp) {
  // An inactive spec behind the pointer must leave results bit-identical
  // to a run with no spec at all.
  const TaskGraph graph = gen::layered_dag({});
  const Topology ring = topo::ring(4);
  const CommModel comm = CommModel::paper_default();
  sim::FaultSpec inactive;  // all MTBFs zero
  sim::SimOptions with_spec;
  with_spec.faults = &inactive;
  sched::HlfScheduler a;
  sched::HlfScheduler b;
  const sim::SimResult ra = sim::simulate(graph, ring, comm, a, with_spec);
  const sim::SimResult rb = sim::simulate(graph, ring, comm, b);
  EXPECT_EQ(ra.makespan, rb.makespan);
  EXPECT_EQ(ra.placement, rb.placement);
  EXPECT_EQ(ra.num_epochs, rb.num_epochs);
}

// ---------------------------------------------------------------------------
// Cross-policy recovery validity.

/// Every registry policy, run under active machine + stall + link faults,
/// must produce a schedule the fault-aware validator accepts: no task on a
/// crashed machine, retries respecting the timeout + backoff discipline,
/// exclusivity and precedence intact.
TEST(FaultCrossPolicy, EveryPolicySurvivesTheFaultValidator) {
  const auto& registry = sched::PolicyRegistry::instance();
  Rng rng(0xFA017);
  const Topology machines[] = {topo::ring(4), topo::mesh(2, 3)};
  int validated = 0;
  for (int round = 0; round < 4; ++round) {
    gen::LayeredDagOptions graph_options;
    graph_options.layers = 3 + static_cast<int>(rng.uniform_index(3));
    graph_options.seed = rng.next_u64();
    const TaskGraph graph = gen::layered_dag(graph_options);
    const Topology& machine = machines[round % 2];
    CommModel comm = CommModel::paper_default();
    comm.sigma = us(rng.uniform_int(0, 8));

    sim::FaultSpec faults;
    faults.machine_mtbf = us(std::int64_t{200});
    faults.stall_mtbf = us(std::int64_t{250});
    faults.link_mtbf = us(std::int64_t{220});
    faults.link_drop_prob = 0.6;
    faults.seed = rng.next_u64();

    for (const std::string& name : registry.names()) {
      sched::PolicyConfig config = registry.make_config(name);
      config.seed = rng.next_u64();
      if (config.has_key("chains")) config.set_int("chains", 1);
      if (config.has_key("max_steps")) {
        config.set_int("max_steps", name == "gsa" ? 6 : 12);
      }
      if (config.has_key("on_fault")) {
        config.set_string("on_fault", round % 2 == 0 ? "repin" : "wait");
      }
      const auto policy = registry.make(name, config);
      sched::PolicyRunOptions run_options;
      run_options.sim.record_trace = true;
      run_options.sim.faults = &faults;
      const sched::PolicyRunOutcome outcome =
          policy->run(graph, machine, comm, run_options);
      if (outcome.result.failed) continue;  // exhaustion is a legal outcome
      const auto violations = sim::validate_faulty_run(
          graph, machine, comm, faults, outcome.result);
      EXPECT_TRUE(violations.empty())
          << name << " on " << machine.name() << " (round " << round
          << "): " << (violations.empty() ? "" : violations.front());
      ++validated;
    }
  }
  EXPECT_GT(validated, 0) << "every single run failed; faults too harsh";
}

/// The HEFT replan strategy must also hold up under crashes: the rebuilt
/// plan may not place work on a down machine.
TEST(FaultCrossPolicy, HeftReplanRecoversFromCrashes) {
  Rng rng(0xBEEF);
  gen::LayeredDagOptions graph_options;
  graph_options.layers = 4;
  graph_options.seed = 11;
  const TaskGraph graph = gen::layered_dag(graph_options);
  const Topology ring = topo::ring(4);
  const CommModel comm = CommModel::paper_default();
  sim::FaultSpec faults;
  faults.machine_mtbf = us(std::int64_t{150});
  faults.seed = 17;

  const auto& registry = sched::PolicyRegistry::instance();
  for (const char* strategy : {"wait", "repin", "replan"}) {
    sched::PolicyConfig config = registry.make_config("heft");
    config.set_string("on_fault", strategy);
    const auto policy = registry.make("heft", config);
    sched::PolicyRunOptions run_options;
    run_options.sim.record_trace = true;
    run_options.sim.faults = &faults;
    const sched::PolicyRunOutcome outcome =
        policy->run(graph, ring, comm, run_options);
    if (outcome.result.failed) continue;
    EXPECT_TRUE(sim::validate_faulty_run(graph, ring, comm, faults,
                                         outcome.result)
                    .empty())
        << "heft on_fault=" << strategy;
  }
}

// ---------------------------------------------------------------------------
// Registry on_fault configuration.

TEST(FaultConfig, OnFaultKeyIsValidatedPerPolicy) {
  const auto& registry = sched::PolicyRegistry::instance();
  // HEFT/PEFT advertise replan_on_fault and accept all three strategies.
  EXPECT_TRUE(registry.descriptor("heft").caps.replan_on_fault);
  EXPECT_TRUE(registry.descriptor("peft").caps.replan_on_fault);
  for (const char* name : {"heft", "peft"}) {
    for (const char* strategy : {"wait", "repin", "replan"}) {
      sched::PolicyConfig config = registry.make_config(name);
      config.set_string("on_fault", strategy);
      EXPECT_NO_THROW(registry.make(name, config)) << name << " " << strategy;
    }
  }
  // gsa repairs by re-pinning only — its annealed mapping has no ranking
  // to replan from.
  {
    sched::PolicyConfig config = registry.make_config("gsa");
    config.set_string("on_fault", "repin");
    EXPECT_NO_THROW(registry.make("gsa", config));
    config.set_string("on_fault", "replan");
    EXPECT_THROW(registry.make("gsa", config), std::invalid_argument);
  }
  // Unknown strategies are a config error, not a silent default.
  {
    sched::PolicyConfig config = registry.make_config("heft");
    config.set_string("on_fault", "pray");
    EXPECT_THROW(registry.make("heft", config), std::invalid_argument);
  }
}

TEST(FaultConfig, RepinSchedulerRejectsBadMappings) {
  const TaskGraph graph =
      gen::chain(3, us(std::int64_t{10}), us(std::int64_t{1}));
  const Topology ring = topo::ring(3);
  const CommModel comm = CommModel::disabled();
  sched::RepinScheduler short_mapping({0});  // 1 entry for 3 tasks
  EXPECT_THROW(sim::simulate(graph, ring, comm, short_mapping),
               std::exception);
}

// ---------------------------------------------------------------------------
// Spec surface: fault knobs, policy_defaults, deprecation warnings.

const char* kFaultySpec = R"(
seed 21
comm paper
topology ring:4
policy hlf
policy heft(on_fault=repin)
family gnp count=3 tasks=10:14 edge_probability=0.2
family diamond count=2 width=4:6
fault_machine_mtbf_us 150
fault_machine_mttr_us 40
fault_link_mtbf_us 200
fault_link_drop_prob 0.5
fault_max_retries 6
)";

TEST(FaultSpecParse, FaultKnobsRoundTrip) {
  const sweep::SweepSpec spec = sweep::parse_spec(kFaultySpec);
  EXPECT_TRUE(spec.faults.enabled());
  EXPECT_EQ(spec.faults.machine_mtbf_us.lo, 150.0);
  EXPECT_EQ(spec.faults.machine_mttr_us.lo, 40.0);
  EXPECT_EQ(spec.faults.link_mtbf_us.lo, 200.0);
  EXPECT_EQ(spec.faults.link_drop_prob.lo, 0.5);
  EXPECT_EQ(spec.faults.max_retries, 6);
  EXPECT_NO_THROW(spec.validate());
}

TEST(FaultSpecParse, FaultRangesAreDrawnPerInstance) {
  std::string text(kFaultySpec);
  text += "fault_machine_mtbf_us 100:300\n";
  const sweep::SweepSpec spec = sweep::parse_spec(text);
  EXPECT_EQ(spec.faults.machine_mtbf_us.lo, 100.0);
  EXPECT_EQ(spec.faults.machine_mtbf_us.hi, 300.0);
}

TEST(FaultSpecParse, LinkFaultsRequireComm) {
  // parse_spec validates; link faults with no messages are a spec error.
  EXPECT_THROW(sweep::parse_spec(R"(
seed 1
comm off
topology ring:4
policy hlf
family diamond count=1 width=4
fault_link_mtbf_us 100
)"),
               std::invalid_argument);
}

TEST(FaultSpecParse, PolicyDefaultsLayerBetweenLegacyAndParens) {
  const char* text = R"(
seed 1
comm off
topology ring:4
sa_max_steps 12
policy_defaults sa(max_steps=9,moves=3)
policy sa
policy sa(max_steps=5)
family diamond count=1 width=4
)";
  const sweep::SweepSpec spec = sweep::parse_spec(text);
  // policy_defaults wins over the deprecated spec-level knob...
  const auto plain = sweep::effective_policy_config(spec, spec.policies[0]);
  EXPECT_EQ(plain.get_int("max_steps"), 9);
  EXPECT_EQ(plain.get_int("moves"), 3);
  // ...and per-policy parens win over policy_defaults.
  const auto overridden =
      sweep::effective_policy_config(spec, spec.policies[1]);
  EXPECT_EQ(overridden.get_int("max_steps"), 5);
  EXPECT_EQ(overridden.get_int("moves"), 3);
}

TEST(FaultSpecParse, LegacyKnobsWarnButStillApply) {
  const char* text = R"(
seed 1
comm off
topology ring:4
sa_max_steps 12
gsa_chains 3
policy sa
family diamond count=1 width=4
)";
  const sweep::SweepSpec spec = sweep::parse_spec(text);
  ASSERT_EQ(spec.warnings.size(), 2u);
  EXPECT_NE(spec.warnings[0].find("deprecated"), std::string::npos);
  EXPECT_NE(spec.warnings[0].find("policy_defaults"), std::string::npos);
  EXPECT_NE(spec.warnings[0].find("sa_max_steps"), std::string::npos);
  // The knob still works — deprecation is a warning, not a break.
  const auto config = sweep::effective_policy_config(spec, spec.policies[0]);
  EXPECT_EQ(config.get_int("max_steps"), 12);
}

TEST(FaultSpecParse, PolicyDefaultsRejectsUnknownPolicyAndDuplicates) {
  EXPECT_THROW(sweep::parse_spec(R"(
seed 1
topology ring:4
policy_defaults nonsense(max_steps=2)
policy hlf
family diamond count=1 width=4
)"),
               std::invalid_argument);
  EXPECT_THROW(sweep::parse_spec(R"(
seed 1
topology ring:4
policy_defaults sa(max_steps=2)
policy_defaults sa(moves=1)
policy sa
family diamond count=1 width=4
)"),
               std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Sweep-level robustness surface and byte-determinism.

sweep::SweepSpec faulty_sweep_spec() {
  sweep::SweepSpec spec = sweep::parse_spec(kFaultySpec);
  spec.threads = 1;
  return spec;
}

TEST(FaultSweep, RobustnessColumnsAreFilled) {
  sweep::SweepSpec spec = faulty_sweep_spec();
  const sweep::SweepResult result = sweep::run_sweep(spec);
  ASSERT_EQ(result.instances.size(), 5u);
  for (const sweep::InstanceResult& row : result.instances) {
    ASSERT_EQ(row.base_makespans.size(), spec.policies.size());
    ASSERT_EQ(row.retries.size(), spec.policies.size());
    ASSERT_EQ(row.failed.size(), spec.policies.size());
    EXPECT_NE(row.fault_seed, 0u);
    for (std::size_t p = 0; p < spec.policies.size(); ++p) {
      EXPECT_GT(row.base_makespans[p], 0);
      // Faulted makespans never beat their paired fault-free baseline.
      EXPECT_GE(row.makespans[p], row.base_makespans[p]);
    }
  }
  const auto ranking = sweep::summarize(result);
  for (const sweep::PolicySummary& s : ranking) {
    EXPECT_GE(s.geomean_degradation, 1.0) << s.policy;
    EXPECT_GE(s.p99_degradation, s.geomean_degradation * 0.5) << s.policy;
    EXPECT_GE(s.success_rate, 0.0);
    EXPECT_LE(s.success_rate, 1.0);
  }
  const auto fault_free = sweep::fault_free_ranking(result);
  EXPECT_EQ(fault_free.size(), spec.policies.size());

  const std::string json = sweep::summary_json(result, ranking);
  EXPECT_NE(json.find("\"fault_machine_mtbf_us\""), std::string::npos);
  EXPECT_NE(json.find("\"fault_max_retries\""), std::string::npos);
  EXPECT_NE(json.find("\"robustness\""), std::string::npos);
  EXPECT_NE(json.find("\"fault_free_ranking\""), std::string::npos);
  const std::string csv = sweep::per_instance_csv(result);
  EXPECT_NE(csv.find("base_makespan_us"), std::string::npos);
  EXPECT_NE(csv.find("degradation"), std::string::npos);
}

TEST(FaultSweep, FaultedSummaryIsByteIdenticalAcrossRunsAndThreads) {
  sweep::SweepSpec spec = faulty_sweep_spec();
  const sweep::SweepResult first = sweep::run_sweep(spec);
  const sweep::SweepResult second = sweep::run_sweep(spec);
  spec.threads = 4;
  const sweep::SweepResult threaded = sweep::run_sweep(spec);

  const std::string a = sweep::summary_json(first, sweep::summarize(first));
  const std::string b = sweep::summary_json(second, sweep::summarize(second));
  const std::string c =
      sweep::summary_json(threaded, sweep::summarize(threaded));
  EXPECT_EQ(a, b) << "faulted sweep is not run-deterministic";
  EXPECT_EQ(a, c) << "faulted sweep depends on the thread count";
  EXPECT_EQ(sweep::per_instance_csv(first),
            sweep::per_instance_csv(threaded));
}

TEST(FaultSweep, ZeroFaultSpecKeepsTheLegacyArtifactShape) {
  // A spec without fault knobs must not grow new JSON keys or CSV columns
  // (byte-compat with every golden recorded before faults existed).
  sweep::SweepSpec spec = sweep::parse_spec(R"(
seed 5
comm paper
topology ring:4
policy hlf
policy random
family diamond count=2 width=4:6
)");
  spec.threads = 1;
  const sweep::SweepResult result = sweep::run_sweep(spec);
  const std::string json =
      sweep::summary_json(result, sweep::summarize(result));
  EXPECT_EQ(json.find("\"fault_"), std::string::npos);
  EXPECT_EQ(json.find("\"robustness\""), std::string::npos);
  EXPECT_EQ(json.find("\"fault_free_ranking\""), std::string::npos);
  const std::string csv = sweep::per_instance_csv(result);
  EXPECT_EQ(csv.find("degradation"), std::string::npos);
  for (const sweep::InstanceResult& row : result.instances) {
    EXPECT_TRUE(row.base_makespans.empty());
    EXPECT_EQ(row.fault_seed, 0u);
  }
}

}  // namespace
}  // namespace dagsched
