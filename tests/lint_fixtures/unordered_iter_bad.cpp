// Fixture: hash-order iteration in what the options call a writer path.
#include <string>
#include <unordered_map>
#include <unordered_set>

int serialize_counts(const std::unordered_map<std::string, int>& counts) {
  int total = 0;
  for (const auto& entry : counts) total += entry.second;
  return total;
}

int serialize_names(const std::unordered_set<std::string>& names) {
  int total = 0;
  for (auto it = names.begin(); it != names.end(); ++it) {
    total += static_cast<int>(it->size());
  }
  return total;
}
