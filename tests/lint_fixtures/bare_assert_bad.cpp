// Fixture: a bare assert in Release-kept invariant code.
#include <cassert>

int checked_half(int value) {
  assert(value % 2 == 0);
  return value / 2;
}
