// Fixture: hot-path assert kept with a perf justification.
#include <cassert>

int hot_half(int value) {
  // LINT-ALLOW(bare-assert): fixture hot path; require() would cost throughput
  assert(value % 2 == 0);
  return value / 2;
}
