// Fixture: the sanctioned seam and a reasoned suppression.
#include "util/rng.hpp"

double stream_roll(unsigned long long seed) {
  dagsched::Rng rng = dagsched::Rng::stream(seed, 3);
  return rng.uniform();
}

double pinned_roll() {
  // LINT-ALLOW(rng-stream): fixture for a workload-defining literal seed
  dagsched::Rng rng(0x1234u);
  return rng.uniform();
}
