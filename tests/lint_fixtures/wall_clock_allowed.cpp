// Fixture: a reasoned suppression silences the finding.
#include <chrono>

long long budget_start_ns() {
  // LINT-ALLOW(wall-clock): fixture wall budget; never enters an artifact
  return std::chrono::steady_clock::now().time_since_epoch().count();
}
