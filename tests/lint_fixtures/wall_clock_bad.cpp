// Fixture: every wall-clock / host-entropy source the check must catch.
#include <chrono>
#include <cstdlib>
#include <random>

long long now_ns() {
  return std::chrono::steady_clock::now().time_since_epoch().count();
}

long long today_ns() {
  return std::chrono::system_clock::now().time_since_epoch().count();
}

unsigned host_entropy() {
  std::random_device device;
  return device();
}

int c_library_roll() { return rand() % 6; }
