// Fixture: suppressed printf rendering (e.g. a sanctioned renderer).
#include <cstdio>

void buffer_ratio(char* buffer, double ratio) {
  // LINT-ALLOW(float-format): fixture stand-in for the sanctioned format_fixed renderer
  std::snprintf(buffer, 64, "%.4f", ratio);
}
