// Fixture: order-insensitive fold, suppressed with a reason.
#include <string>
#include <unordered_map>

int count_entries(const std::unordered_map<std::string, int>& counts) {
  int total = 0;
  // LINT-ALLOW(unordered-iter): commutative sum; iteration order cannot reach the output
  for (const auto& entry : counts) total += entry.second;
  return total;
}
