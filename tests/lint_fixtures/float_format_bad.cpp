// Fixture: every unsanctioned floating-point rendering the check covers.
#include <cstdio>
#include <iostream>
#include <string>

std::string render_ratio(double ratio) { return std::to_string(ratio); }

void print_ratio(double ratio) { std::cout << ratio << "\n"; }

void buffer_ratio(char* buffer, double ratio) {
  std::sprintf(buffer, "ratio=%g", ratio);
}
