// Fixture: suppression hygiene — unknown check, missing reason, unused.
#include <cassert>

int bad_suppressions(int value) {
  // LINT-ALLOW(no-such-check): the check name is not in the catalogue
  // LINT-ALLOW(bare-assert):
  assert(value > 0);
  return value;
}

// LINT-ALLOW(wall-clock): nothing on this or the next line uses a clock
int unused_suppression() { return 0; }
