// Fixture: ad-hoc Rng construction outside the Rng::stream seams.
#include "util/rng.hpp"

double roll(unsigned long long seed) {
  dagsched::Rng rng(seed);
  return rng.uniform();
}

double reroll() {
  dagsched::Rng fresh;
  return fresh.uniform();
}
