#!/usr/bin/env bash
# Smoke-tests the sweep runner's determinism contract: the same spec and
# seed must produce a byte-identical summary JSON at 1 worker thread, at 4
# worker threads, and across repeated runs.  Wired into CTest as
# `sweep_smoke` (see CMakeLists.txt).
#
# Usage: tools/sweep_small.sh <sweep-binary> <spec-file>
#   Defaults: build/sweep and tools/sweep_small.spec relative to the repo.

set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
sweep_bin="${1:-${repo_root}/build/sweep}"
spec="${2:-${repo_root}/tools/sweep_small.spec}"

if [[ ! -x "${sweep_bin}" ]]; then
  echo "sweep_small.sh: sweep binary not found at ${sweep_bin}" >&2
  exit 1
fi

workdir="$(mktemp -d)"
trap 'rm -rf "${workdir}"' EXIT

"${sweep_bin}" "${spec}" --threads 1 --quiet --out "${workdir}/t1.json" \
  > "${workdir}/t1.table"
"${sweep_bin}" "${spec}" --threads 4 --quiet --out "${workdir}/t4.json" \
  > "${workdir}/t4.table"
"${sweep_bin}" "${spec}" --threads 4 --quiet --out "${workdir}/t4b.json" \
  > /dev/null

if ! cmp -s "${workdir}/t1.json" "${workdir}/t4.json"; then
  echo "FAIL: summary JSON differs between 1 and 4 worker threads" >&2
  diff "${workdir}/t1.json" "${workdir}/t4.json" >&2 || true
  exit 1
fi
if ! cmp -s "${workdir}/t4.json" "${workdir}/t4b.json"; then
  echo "FAIL: summary JSON differs between repeated runs" >&2
  exit 1
fi
if ! cmp -s "${workdir}/t1.table" "${workdir}/t4.table"; then
  echo "FAIL: ranking table differs between 1 and 4 worker threads" >&2
  exit 1
fi
if ! grep -q '"policy": "sa"' "${workdir}/t1.json"; then
  echo "FAIL: summary JSON has no SA ranking entry" >&2
  exit 1
fi
if ! grep -q '"instances": 24' "${workdir}/t1.json"; then
  echo "FAIL: summary JSON does not report the expected 24 instances" >&2
  exit 1
fi

echo "OK: sweep summary deterministic across threads and runs"
