// dagsched-lint: the determinism-contract linter CLI.
//
//   dagsched-lint [-I <include-root>]... [--check <name>]... <path>...
//
// Each <path> is a file or a directory (recursed for *.cpp / *.hpp,
// visited in sorted order so output is stable).  Exit status: 0 clean,
// 1 findings, 2 usage or I/O error.  See src/lint/lint.hpp for the check
// catalogue and the LINT-ALLOW suppression syntax.

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <iostream>
#include <stdexcept>
#include <string>
#include <vector>

#include "lint/lint.hpp"

namespace fs = std::filesystem;

namespace {

void usage(std::ostream& out) {
  out << "usage: dagsched-lint [options] <file-or-dir>...\n"
         "  -I <root>        resolve #include \"...\" against <root> too\n"
         "  --check <name>   run only this check (repeatable)\n"
         "  --list-checks    print the check names and exit\n";
}

bool lintable(const fs::path& path) {
  const std::string ext = path.extension().string();
  return ext == ".cpp" || ext == ".hpp";
}

/// Expands files/directories into a sorted list of lintable files.
std::vector<std::string> collect_inputs(const std::vector<std::string>& paths) {
  std::vector<std::string> files;
  for (const std::string& path : paths) {
    if (fs::is_directory(path)) {
      for (const auto& entry : fs::recursive_directory_iterator(path)) {
        if (entry.is_regular_file() && lintable(entry.path())) {
          files.push_back(entry.path().generic_string());
        }
      }
    } else {
      files.push_back(path);  // explicit files are linted regardless of ext
    }
  }
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());
  return files;
}

}  // namespace

int main(int argc, char** argv) {
  dagsched::lint::LintOptions options = dagsched::lint::default_options();
  std::vector<std::string> inputs;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      usage(std::cout);
      return 0;
    }
    if (arg == "--list-checks") {
      for (const std::string& check : dagsched::lint::known_checks()) {
        std::cout << check << "\n";
      }
      return 0;
    }
    if (arg == "-I") {
      if (++i >= argc) {
        std::cerr << "dagsched-lint: -I needs an argument\n";
        return 2;
      }
      options.include_roots.push_back(argv[i]);
      continue;
    }
    if (arg == "--check") {
      if (++i >= argc) {
        std::cerr << "dagsched-lint: --check needs an argument\n";
        return 2;
      }
      const auto& known = dagsched::lint::known_checks();
      if (std::find(known.begin(), known.end(), argv[i]) == known.end()) {
        std::cerr << "dagsched-lint: unknown check '" << argv[i]
                  << "' (see --list-checks)\n";
        return 2;
      }
      options.checks.push_back(argv[i]);
      continue;
    }
    if (!arg.empty() && arg[0] == '-') {
      std::cerr << "dagsched-lint: unknown option '" << arg << "'\n";
      usage(std::cerr);
      return 2;
    }
    inputs.push_back(arg);
  }

  if (inputs.empty()) {
    usage(std::cerr);
    return 2;
  }

  std::vector<dagsched::lint::Finding> findings;
  std::size_t files = 0;
  try {
    for (const std::string& file : collect_inputs(inputs)) {
      auto file_findings = dagsched::lint::lint_file(file, options);
      findings.insert(findings.end(), file_findings.begin(),
                      file_findings.end());
      ++files;
    }
  } catch (const std::exception& error) {
    std::cerr << error.what() << "\n";
    return 2;
  }

  std::cout << dagsched::lint::format_findings(findings);
  std::cerr << "dagsched-lint: " << files << " file(s), " << findings.size()
            << " finding(s)\n";
  return findings.empty() ? 0 : 1;
}
