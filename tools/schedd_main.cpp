// schedd — the scheduling daemon CLI.  Reads JSONL ScheduleRequests on
// stdin, writes one JSONL response per request on stdout (in request
// order), and optionally appends a JSONL event trace to a file.  See
// src/service/daemon.hpp for the wire protocol and determinism contract,
// and tools/schedd_smoke.sh for an end-to-end example.

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>

#include "service/daemon.hpp"

namespace {

void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [options]\n"
               "\n"
               "Reads JSONL requests from stdin until EOF, writes JSONL\n"
               "responses to stdout in request order.\n"
               "\n"
               "options:\n"
               "  --max-in-flight N    worker threads (default 1; 1 => "
               "byte-deterministic trace)\n"
               "  --max-queue N        waiting requests before shedding "
               "(default 16)\n"
               "  --cache-capacity N   plan-cache entries, 0 disables "
               "(default 256)\n"
               "  --default-cost-ms X  admission cost assumed for queued "
               "requests\n"
               "                       without a time budget (default 0)\n"
               "  --trace PATH         append JSONL trace events to PATH\n"
               "  --help               this message\n",
               argv0);
}

long parse_long(const std::string& flag, const char* text) {
  char* end = nullptr;
  const long value = std::strtol(text, &end, 10);
  if (end == text || *end != '\0' || value < 0) {
    std::fprintf(stderr, "schedd: %s needs a non-negative integer, got '%s'\n",
                 flag.c_str(), text);
    std::exit(2);
  }
  return value;
}

double parse_double(const std::string& flag, const char* text) {
  char* end = nullptr;
  const double value = std::strtod(text, &end);
  if (end == text || *end != '\0' || value < 0) {
    std::fprintf(stderr, "schedd: %s needs a non-negative number, got '%s'\n",
                 flag.c_str(), text);
    std::exit(2);
  }
  return value;
}

}  // namespace

int main(int argc, char** argv) {
  dagsched::service::ScheddOptions options;
  std::string trace_path;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "schedd: %s needs a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      return 0;
    } else if (arg == "--max-in-flight") {
      options.max_in_flight = static_cast<int>(parse_long(arg, next()));
      if (options.max_in_flight < 1) options.max_in_flight = 1;
    } else if (arg == "--max-queue") {
      options.max_queue = static_cast<int>(parse_long(arg, next()));
    } else if (arg == "--cache-capacity") {
      options.cache_capacity = static_cast<std::size_t>(parse_long(arg, next()));
    } else if (arg == "--default-cost-ms") {
      options.default_cost_ms = parse_double(arg, next());
    } else if (arg == "--trace") {
      trace_path = next();
    } else {
      std::fprintf(stderr, "schedd: unknown option '%s'\n", arg.c_str());
      usage(argv[0]);
      return 2;
    }
  }

  std::ofstream trace_file;
  std::ostream* trace = nullptr;
  if (!trace_path.empty()) {
    trace_file.open(trace_path, std::ios::out | std::ios::app);
    if (!trace_file) {
      std::fprintf(stderr, "schedd: cannot open trace file '%s'\n",
                   trace_path.c_str());
      return 2;
    }
    trace = &trace_file;
  }

  dagsched::service::Schedd daemon(options);
  return daemon.run(std::cin, std::cout, trace);
}
