#!/usr/bin/env bash
# Smoke-tests the schedd daemon end to end (wired into CTest as
# `schedd_smoke`; see CMakeLists.txt):
#
#  1. Replays tools/schedd_requests.jsonl through the daemon and checks
#     the response stream: an isomorphic relabeling of an earlier request
#     is served from the plan cache (byte-identical plan modulo the
#     relabeling, same makespan — and for gsa, a repeat with the same
#     seed never re-anneals), a different seed misses, a bad policy gets
#     a structured error, and the stats op reports consistent counters.
#  2. Runs the same stream twice with --max-in-flight 1 and requires the
#     JSONL event traces — and the responses minus their elapsed_ms
#     timing field — to be byte-identical.
#  3. Floods the daemon with slow anneal requests under --max-queue 0 and
#     --max-queue 2 and requires structured load-shedding
#     ("status":"shed" with a queue_full reason).
#
# Usage: tools/schedd_smoke.sh <schedd-binary> <tools-dir>

set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
schedd_bin="${1:-${repo_root}/build/schedd}"
tools_dir="${2:-${repo_root}/tools}"
requests="${tools_dir}/schedd_requests.jsonl"

if [[ ! -x "${schedd_bin}" ]]; then
  echo "schedd_smoke.sh: schedd binary not found at ${schedd_bin}" >&2
  exit 1
fi
if [[ ! -f "${requests}" ]]; then
  echo "schedd_smoke.sh: request fixture not found at ${requests}" >&2
  exit 1
fi

workdir="$(mktemp -d)"
trap 'rm -rf "${workdir}"' EXIT

field() {  # field <file> <id> <key>  -> value of "key" on the line for id
  grep "\"id\":\"$2\"" "$1" | sed -n "s/.*\"$3\":\"\\{0,1\\}\\([^,\"}]*\\)\"\\{0,1\\}[,}].*/\\1/p"
}

# ---- 1. replay + cache / error semantics -------------------------------
"${schedd_bin}" --max-in-flight 1 --trace "${workdir}/trace1.jsonl" \
  < "${requests}" > "${workdir}/out1.jsonl"

lines=$(wc -l < "${workdir}/out1.jsonl")
if [[ "${lines}" -ne 10 ]]; then
  echo "FAIL: expected 10 responses, got ${lines}" >&2
  cat "${workdir}/out1.jsonl" >&2
  exit 1
fi

if ! grep -q '"id":"lp".*"name":"heft"' "${workdir}/out1.jsonl"; then
  echo "FAIL: list_policies response does not list heft" >&2
  exit 1
fi

# The isomorphic relabeling must hash identically and hit the cache with
# the same makespan as the original.
for key in graph_hash makespan_us; do
  a="$(field "${workdir}/out1.jsonl" heft-a ${key})"
  b="$(field "${workdir}/out1.jsonl" heft-a-iso ${key})"
  if [[ -z "${a}" || "${a}" != "${b}" ]]; then
    echo "FAIL: isomorphic relabeling changed ${key}: '${a}' vs '${b}'" >&2
    exit 1
  fi
done
if [[ "$(field "${workdir}/out1.jsonl" heft-a cache)" != "miss" ]]; then
  echo "FAIL: first heft request should miss the cache" >&2
  exit 1
fi
if [[ "$(field "${workdir}/out1.jsonl" heft-a-iso cache)" != "hit" ]]; then
  echo "FAIL: isomorphic relabeling should hit the cache" >&2
  exit 1
fi

# A gsa repeat with the same seed is served from the cache — no second
# anneal — with the byte-identical placement; a different seed misses.
if [[ "$(field "${workdir}/out1.jsonl" gsa-b2 cache)" != "hit" ]]; then
  echo "FAIL: identical gsa repeat (same seed) should hit the cache" >&2
  exit 1
fi
b1_plan=$(grep '"id":"gsa-b1"' "${workdir}/out1.jsonl" | sed 's/.*"placement":\(\[[^]]*\]\).*/\1/')
b2_plan=$(grep '"id":"gsa-b2"' "${workdir}/out1.jsonl" | sed 's/.*"placement":\(\[[^]]*\]\).*/\1/')
if [[ -z "${b1_plan}" || "${b1_plan}" != "${b2_plan}" ]]; then
  echo "FAIL: cached gsa repeat returned a different plan" >&2
  exit 1
fi
if [[ "$(field "${workdir}/out1.jsonl" gsa-b3 cache)" != "miss" ]]; then
  echo "FAIL: gsa with a different seed should miss the cache" >&2
  exit 1
fi

if [[ "$(field "${workdir}/out1.jsonl" bad-policy status)" != "error" ]]; then
  echo "FAIL: unknown policy should produce a structured error" >&2
  exit 1
fi
if ! grep -q '"status":"error".*json' "${workdir}/out1.jsonl"; then
  echo "FAIL: malformed input line should produce a parse error response" >&2
  exit 1
fi
# stats arrives after lp + 5 schedules: 6 received, 6 completed, 3 misses
# (heft-a, gsa-b1, gsa-b3), 2 hits (heft-a-iso, gsa-b2).  Pin the exact
# counter line.
expected_stats='"received":6,"completed":6,"shed":0,"errors":0,"cache_hits":2,"cache_misses":3'
if ! grep -q "\"id\":\"stats\".*${expected_stats}" "${workdir}/out1.jsonl"; then
  echo "FAIL: stats counters are wrong; wanted ${expected_stats}, got:" >&2
  grep '"id":"stats"' "${workdir}/out1.jsonl" >&2
  exit 1
fi

# ---- 2. byte-determinism across runs -----------------------------------
"${schedd_bin}" --max-in-flight 1 --trace "${workdir}/trace2.jsonl" \
  < "${requests}" > "${workdir}/out2.jsonl"
if ! cmp -s "${workdir}/trace1.jsonl" "${workdir}/trace2.jsonl"; then
  echo "FAIL: trace differs between identical runs" >&2
  diff "${workdir}/trace1.jsonl" "${workdir}/trace2.jsonl" >&2 || true
  exit 1
fi
sed 's/,"elapsed_ms":[^}]*//' "${workdir}/out1.jsonl" > "${workdir}/out1.stable"
sed 's/,"elapsed_ms":[^}]*//' "${workdir}/out2.jsonl" > "${workdir}/out2.stable"
if ! cmp -s "${workdir}/out1.stable" "${workdir}/out2.stable"; then
  echo "FAIL: responses (minus elapsed_ms) differ between identical runs" >&2
  diff "${workdir}/out1.stable" "${workdir}/out2.stable" >&2 || true
  exit 1
fi

# ---- 3. admission control / load shedding ------------------------------
# A burst of slow anneals over 100-task chains.  The reader parses lines
# far faster than gsa anneals, so a bounded queue must shed.
durations="$(seq -s, 100 199)"
edges="[0,1,1]"
for ((i = 1; i < 99; ++i)); do
  edges="${edges},[${i},$((i + 1)),1]"
done
: > "${workdir}/burst.jsonl"
for ((i = 0; i < 12; ++i)); do
  printf '{"id":"burst-%d","policy":"gsa","seed":%d,"graph":{"durations_us":[%s],"edges":[%s]}}\n' \
    "${i}" "${i}" "${durations}" "${edges}" >> "${workdir}/burst.jsonl"
done

# max_queue 0: nothing can wait, every request is shed — deterministic.
"${schedd_bin}" --max-in-flight 1 --max-queue 0 \
  < "${workdir}/burst.jsonl" > "${workdir}/shed0.jsonl"
shed0=$(grep -c '"status":"shed"' "${workdir}/shed0.jsonl" || true)
if [[ "${shed0}" -ne 12 ]]; then
  echo "FAIL: --max-queue 0 should shed all 12 requests, shed ${shed0}" >&2
  exit 1
fi
if ! grep -q '"error":"queue_full' "${workdir}/shed0.jsonl"; then
  echo "FAIL: shed responses lack a structured queue_full reason" >&2
  exit 1
fi

# max_queue 2: the burst outpaces one worker, so at least one request is
# shed while the rest complete (the exact split is timing-dependent).
"${schedd_bin}" --max-in-flight 1 --max-queue 2 \
  < "${workdir}/burst.jsonl" > "${workdir}/shed2.jsonl"
shed2=$(grep -c '"status":"shed"' "${workdir}/shed2.jsonl" || true)
ok2=$(grep -c '"status":"ok"' "${workdir}/shed2.jsonl" || true)
if [[ "${shed2}" -lt 1 || "${ok2}" -lt 1 ]]; then
  echo "FAIL: --max-queue 2 burst should both shed (${shed2}) and complete (${ok2})" >&2
  exit 1
fi

# ---- 4. concurrent workers keep the ordered-emission contract ----------
# With several workers racing through the plan cache and the admission
# counters, responses must still come back in input order with the same
# per-request results as the sequential run.  Only the cache column may
# legitimately differ: a repeat can be priced in parallel with its
# original instead of after it, turning a hit into a miss.  (This is the
# section the CI sanitize job leans on for --max-in-flight > 1 races.)
"${schedd_bin}" --max-in-flight 4 \
  < "${requests}" > "${workdir}/out4.jsonl"
grep -o '"id":"[^"]*"' "${workdir}/out1.jsonl" > "${workdir}/ids1"
grep -o '"id":"[^"]*"' "${workdir}/out4.jsonl" > "${workdir}/ids4"
if ! cmp -s "${workdir}/ids1" "${workdir}/ids4"; then
  echo "FAIL: --max-in-flight 4 broke the input-ordered response stream" >&2
  diff "${workdir}/ids1" "${workdir}/ids4" >&2 || true
  exit 1
fi
for id in heft-a heft-a-iso gsa-b1 gsa-b2 gsa-b3; do
  for key in status makespan_us; do
    seq_value="$(field "${workdir}/out1.jsonl" "${id}" "${key}")"
    par_value="$(field "${workdir}/out4.jsonl" "${id}" "${key}")"
    if [[ "${seq_value}" != "${par_value}" ]]; then
      echo "FAIL: ${id} ${key} differs under --max-in-flight 4:" \
           "'${seq_value}' vs '${par_value}'" >&2
      exit 1
    fi
  done
done

echo "OK: schedd cache hits on isomorphic repeats, sheds with structured reasons, trace byte-deterministic, ordered under concurrent workers"
