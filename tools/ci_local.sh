#!/usr/bin/env bash
# Local dry run of .github/workflows/ci.yml — the same jobs, adapted to
# whatever toolchain the host actually has (compilers that are missing
# are skipped with a notice, never silently).
#
# Usage:
#   tools/ci_local.sh            # all jobs: build-test matrix, lint,
#                                # sanitize, tsan, sweep-smoke, coverage,
#                                # bench-check
#   tools/ci_local.sh --quick    # one Release build-test + lint +
#                                # sanitize + sweep-smoke (skips Debug,
#                                # clang, tsan, coverage, bench)
#
# Build trees live under ci-build/ (git-ignored); pass CI_BUILD_ROOT to
# relocate them.  Exits nonzero on the first failing job.

set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_root="${CI_BUILD_ROOT:-${repo_root}/ci-build}"
jobs="$(nproc 2>/dev/null || echo 2)"
quick=0
[[ "${1:-}" == "--quick" ]] && quick=1

note() { printf '\n=== %s ===\n' "$*"; }
skip() { printf '\n=== SKIP: %s ===\n' "$*"; }

launcher_args=()
if command -v ccache > /dev/null; then
  launcher_args=(-DCMAKE_C_COMPILER_LAUNCHER=ccache
                 -DCMAKE_CXX_COMPILER_LAUNCHER=ccache)
fi

# --- job: build-test (compiler x build-type matrix) ------------------------
build_test() {
  local cc="$1" cxx="$2" build_type="$3"
  local dir="${build_root}/${cc}-${build_type}"
  note "build-test: ${cxx} ${build_type}"
  cmake -B "${dir}" -S "${repo_root}" \
    -DCMAKE_BUILD_TYPE="${build_type}" \
    -DCMAKE_C_COMPILER="${cc}" -DCMAKE_CXX_COMPILER="${cxx}" \
    "${launcher_args[@]}"
  cmake --build "${dir}" -j"${jobs}"
  (cd "${dir}" && ctest --output-on-failure -j"${jobs}" -E sweep_smoke)
}

compilers=()
command -v g++ > /dev/null && compilers+=("gcc:g++")
command -v clang++ > /dev/null && compilers+=("clang:clang++")
if [[ ${#compilers[@]} -eq 0 ]]; then
  echo "ci_local.sh: no C++ compiler found" >&2
  exit 1
fi
command -v clang++ > /dev/null || skip "clang jobs (clang++ not installed)"

for entry in "${compilers[@]}"; do
  cc="${entry%%:*}"
  cxx="${entry##*:}"
  build_test "${cc}" "${cxx}" Release
  if [[ ${quick} -eq 0 ]]; then
    build_test "${cc}" "${cxx}" Debug
  else
    break  # --quick: first available compiler, Release only
  fi
done

# --- job: lint -------------------------------------------------------------
note "lint: dagsched-lint + clang-tidy + clang-format"
lint_dir="${build_root}/${compilers[0]%%:*}-Release"
cmake --build "${lint_dir}" --target dagsched-lint -j"${jobs}"
"${lint_dir}/dagsched-lint" -I "${repo_root}/src" "${repo_root}/src" \
  "${repo_root}/tools/sweep_main.cpp" "${repo_root}/tools/schedd_main.cpp" \
  "${repo_root}/tools/lint_main.cpp"
if command -v run-clang-tidy > /dev/null; then
  # compile_commands.json is exported by every configure
  # (CMAKE_EXPORT_COMPILE_COMMANDS in CMakeLists.txt).
  run-clang-tidy -quiet -p "${lint_dir}" "${repo_root}/src"
else
  skip "clang-tidy (run-clang-tidy not installed)"
fi
if command -v clang-format > /dev/null; then
  # Mirror the CI rule: check only the files the current change touches.
  format_base="$(git -C "${repo_root}" rev-parse HEAD~1 2> /dev/null || true)"
  touched="$(git -C "${repo_root}" diff --name-only --diff-filter=d \
    "${format_base:-HEAD}" -- 'src/*.cpp' 'src/*.hpp' 'tests/*.cpp' \
    'tools/*.cpp')"
  if [[ -n "${touched}" ]]; then
    (cd "${repo_root}" && echo "${touched}" | \
     xargs clang-format --dry-run --Werror)
  else
    echo "clang-format: no touched C++ files"
  fi
else
  skip "clang-format (not installed)"
fi

# --- job: sanitize ---------------------------------------------------------
note "sanitize: ASan + UBSan, full ctest suite"
sanitize_dir="${build_root}/sanitize"
cmake -B "${sanitize_dir}" -S "${repo_root}" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo -DDAGSCHED_SANITIZE=ON \
  "${launcher_args[@]}"
cmake --build "${sanitize_dir}" -j"${jobs}"
(cd "${sanitize_dir}" &&
 ASAN_OPTIONS=detect_leaks=1 UBSAN_OPTIONS=print_stacktrace=1 \
 ctest --output-on-failure -j"${jobs}")

# --- job: tsan -------------------------------------------------------------
if [[ ${quick} -eq 1 ]]; then
  skip "tsan (--quick)"
else
  note "tsan: concurrent surfaces (chains, sweep pool, schedd workers)"
  tsan_dir="${build_root}/tsan"
  cmake -B "${tsan_dir}" -S "${repo_root}" \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo -DDAGSCHED_SANITIZE=thread \
    -DDAGSCHED_BUILD_BENCHES=OFF -DDAGSCHED_BUILD_EXAMPLES=OFF \
    "${launcher_args[@]}"
  cmake --build "${tsan_dir}" -j"${jobs}"
  (cd "${tsan_dir}" &&
   TSAN_OPTIONS="halt_on_error=1 second_deadlock_stack=1" \
   ctest --output-on-failure -j"${jobs}" \
     -R 'GlobalChains|SweepRunner|SweepSummary|SweepShard|Schedd|Service|schedd_smoke|sweep_smoke')
fi

# --- job: sweep-smoke ------------------------------------------------------
note "sweep-smoke: determinism contract + registry-migration goldens + schedd"
smoke_dir="${build_root}/${compilers[0]%%:*}-Release"
cmake --build "${smoke_dir}" --target sweep schedd -j"${jobs}"
"${repo_root}/tools/sweep_small.sh" "${smoke_dir}/sweep" \
  "${repo_root}/tools/sweep_small.spec"
"${repo_root}/tools/sweep_shard.sh" "${smoke_dir}/sweep" \
  "${repo_root}/tools/sweep_small.spec"
"${repo_root}/tools/sweep_golden.sh" "${smoke_dir}/sweep" \
  "${repo_root}/tools/sweep_golden.spec" "${repo_root}/tools/golden"
"${repo_root}/tools/sweep_faulty.sh" "${smoke_dir}/sweep" \
  "${repo_root}/tools/sweep_faulty.spec"
"${repo_root}/tools/sweep_online.sh" "${smoke_dir}/sweep" \
  "${repo_root}/tools/sweep_online.spec"
"${repo_root}/tools/schedd_smoke.sh" "${smoke_dir}/schedd" \
  "${repo_root}/tools"
"${smoke_dir}/sweep" --list-policies > /dev/null

# --- job: coverage ---------------------------------------------------------
if [[ ${quick} -eq 1 ]]; then
  skip "coverage (--quick)"
elif command -v gcovr > /dev/null && command -v g++ > /dev/null; then
  note "coverage: gcc --coverage + gcovr gate on src/sched/ + src/sim/arrivals"
  # The floor lives in ci.yml; read it from there so the two gates can
  # never drift apart.
  coverage_floor="$(sed -n 's/.*--fail-under-line \([0-9][0-9]*\).*/\1/p' \
    "${repo_root}/.github/workflows/ci.yml" | head -1)"
  : "${coverage_floor:=95}"
  coverage_dir="${build_root}/coverage"
  cmake -B "${coverage_dir}" -S "${repo_root}" \
    -DCMAKE_BUILD_TYPE=Debug \
    -DCMAKE_C_COMPILER=gcc -DCMAKE_CXX_COMPILER=g++ \
    -DCMAKE_CXX_FLAGS=--coverage -DCMAKE_EXE_LINKER_FLAGS=--coverage \
    -DDAGSCHED_BUILD_BENCHES=OFF -DDAGSCHED_BUILD_EXAMPLES=OFF \
    -DDAGSCHED_BUILD_TOOLS=OFF "${launcher_args[@]}"
  cmake --build "${coverage_dir}" -j"${jobs}"
  (cd "${coverage_dir}" && ctest -j"${jobs}" > /dev/null)
  gcovr --root "${repo_root}" --object-directory "${coverage_dir}" \
    --filter 'src/sched/' --filter 'src/sim/arrivals' --print-summary \
    --fail-under-line "${coverage_floor}"
else
  skip "coverage (gcovr not installed)"
fi

# --- job: bench-check ------------------------------------------------------
if [[ ${quick} -eq 1 ]]; then
  skip "bench-check (--quick)"
elif [[ -f "${smoke_dir}/bench_perf" || -x "${smoke_dir}/bench_perf" ]] ||
     cmake --build "${smoke_dir}" --target bench_perf -j"${jobs}" \
       2> /dev/null; then
  note "bench-check: strict gate on the low-noise microbenchmarks"
  out="$(mktemp)"
  trap 'rm -f "${out}"' EXIT
  "${smoke_dir}/bench_perf" --benchmark_format=json \
    --benchmark_out="${out}" --benchmark_out_format=json \
    --benchmark_repetitions=3
  python3 "${repo_root}/tools/bench_diff.py" --git-baseline HEAD "${out}" \
    --strict \
    --strict-filter 'BM_AnnealPacket|BM_MoveDelta|BM_PacketCostEvaluate|BM_TaskLevels|BM_GlobalOracleBatch' \
    --threshold 0.30
else
  skip "bench-check (google-benchmark not available)"
fi

note "ci_local.sh: all jobs green"
