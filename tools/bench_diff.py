#!/usr/bin/env python3
"""Diff two google-benchmark JSON artifacts and print a regression table.

Compares BENCH_perf.json runs benchmark-by-benchmark (aggregate medians
preferred, plain entries otherwise).  Throughput benchmarks compare
items_per_second (higher is better); time-only benchmarks compare
real_time (lower is better).  Moves/s drops beyond the threshold are
flagged REGRESSED; the exit status stays 0 unless --strict is given —
without it, perf tracking is advisory (see ROADMAP.md).

Usage:
  tools/bench_diff.py BASELINE.json FRESH.json [--threshold 0.10] [--strict]
  tools/bench_diff.py --git-baseline HEAD FRESH.json   # baseline from git

The --git-baseline form reads BENCH_perf.json from the given git revision,
so `tools/bench_diff.py --git-baseline HEAD BENCH_perf.json` compares a
fresh run against the committed numbers.

--strict-filter REGEX narrows which regressions are *fatal* under
--strict: benchmarks whose name matches the regex fail the run, the rest
stay advisory (still printed).  CI uses this to gate on the cheap,
low-noise benchmarks (the BM_AnnealPacket family and other
items-per-second microbenchmarks) while the wall-clock-noisy end-to-end
benches remain informational.
"""

import argparse
import json
import re
import subprocess
import sys


def load_benchmarks(text, source):
    try:
        doc = json.loads(text)
    except json.JSONDecodeError as error:
        sys.exit(f"bench_diff: {source} is not valid JSON: {error}")
    entries = {}
    for bench in doc.get("benchmarks", []):
        name = bench.get("name", "")
        run_type = bench.get("run_type", "iteration")
        # Prefer the median aggregate when repetitions were run; fall back
        # to the plain iteration entry.
        if run_type == "aggregate":
            if bench.get("aggregate_name") != "median":
                continue
            key = bench.get("run_name", name)
        else:
            key = name
            if key in entries:
                continue  # keep the first iteration entry
        entries[key] = bench
    return entries


def metric(bench):
    """Returns (value, higher_is_better, unit)."""
    if "items_per_second" in bench:
        return bench["items_per_second"], True, "items/s"
    return bench.get("real_time", 0.0), False, bench.get("time_unit", "ns")


def fmt(value):
    if value >= 1e6:
        return f"{value / 1e6:.2f}M"
    if value >= 1e3:
        return f"{value / 1e3:.2f}k"
    return f"{value:.2f}"


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline", nargs="?", help="baseline JSON file")
    parser.add_argument("fresh", help="fresh JSON file")
    parser.add_argument("--git-baseline", metavar="REV",
                        help="read the baseline BENCH_perf.json from git")
    parser.add_argument("--threshold", type=float, default=0.10,
                        help="relative drop that counts as a regression")
    parser.add_argument("--strict", action="store_true",
                        help="exit nonzero when regressions are found")
    parser.add_argument("--strict-filter", metavar="REGEX", default=None,
                        help="with --strict, only regressions matching this"
                             " regex are fatal; the rest stay advisory")
    args = parser.parse_args()

    strict_pattern = None
    if args.strict_filter is not None:
        if not args.strict:  # a gate that cannot fire is a misconfiguration
            parser.error("--strict-filter requires --strict")
        try:  # fail fast: a typo'd gate must not pass silently on green runs
            strict_pattern = re.compile(args.strict_filter)
        except re.error as error:
            parser.error(f"--strict-filter is not a valid regex: {error}")

    if args.git_baseline:
        try:
            text = subprocess.run(
                ["git", "show", f"{args.git_baseline}:BENCH_perf.json"],
                capture_output=True, text=True, check=True).stdout
        except subprocess.CalledProcessError as error:
            sys.exit(f"bench_diff: git show failed: {error.stderr.strip()}")
        baseline = load_benchmarks(text, f"git:{args.git_baseline}")
    elif args.baseline:
        with open(args.baseline, encoding="utf-8") as f:
            baseline = load_benchmarks(f.read(), args.baseline)
    else:
        parser.error("need a baseline file or --git-baseline")

    with open(args.fresh, encoding="utf-8") as f:
        fresh = load_benchmarks(f.read(), args.fresh)

    rows = []
    regressions = []
    for name in sorted(set(baseline) | set(fresh)):
        if name not in baseline:
            rows.append((name, "-", fmt(metric(fresh[name])[0]), "NEW", ""))
            continue
        if name not in fresh:
            rows.append((name, fmt(metric(baseline[name])[0]), "-",
                         "REMOVED", ""))
            continue
        base_value, higher_better, unit = metric(baseline[name])
        fresh_value, _, _ = metric(fresh[name])
        if base_value <= 0:
            continue
        change = (fresh_value - base_value) / base_value
        if not higher_better:
            change = -change  # normalize: positive change = improvement
        status = ""
        if change < -args.threshold:
            status = "REGRESSED"
            regressions.append(name)
        elif change > args.threshold:
            status = "improved"
        rows.append((name, fmt(base_value), fmt(fresh_value),
                     f"{change * 100:+.1f}%", status))

    widths = [max(len(str(row[col])) for row in rows + [
        ("benchmark", "baseline", "fresh", "change", "")])
        for col in range(5)]
    header = ("benchmark", "baseline", "fresh", "change", "")
    for row in [header] + rows:
        print("  ".join(str(cell).ljust(width)
                        for cell, width in zip(row, widths)).rstrip())

    if regressions:
        print(f"\n{len(regressions)} benchmark(s) regressed more than "
              f"{args.threshold * 100:.0f}%: " + ", ".join(regressions))
        if args.strict:
            if strict_pattern is None:
                return 1
            fatal = [name for name in regressions
                     if strict_pattern.search(name)]
            if fatal:
                print(f"strict gate ({args.strict_filter}) failed: "
                      + ", ".join(fatal))
                return 1
            print(f"strict gate ({args.strict_filter}): no gated benchmark "
                  "regressed; remaining regressions are advisory")
    else:
        print(f"\nno regressions beyond {args.threshold * 100:.0f}%")
    return 0


if __name__ == "__main__":
    try:
        sys.exit(main())
    except BrokenPipeError:  # e.g. piped into head
        sys.exit(0)
