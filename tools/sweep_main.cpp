// The `sweep` CLI: runs a PISA-style batch comparison described by a spec
// file (see src/sweep/spec.hpp for the format) and prints the ranked
// policy table.  --out writes the deterministic summary JSON, --csv the
// per-(instance, policy) rows.
//
//   sweep tools/sweep_example.spec --out sweep_summary.json
//   sweep tools/sweep_small.spec --threads 1 --out a.json
//
// Exit status: 0 on success, 1 on bad usage / spec errors / IO failure.

#include <chrono>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <iterator>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "sched/registry.hpp"
#include "sweep/runner.hpp"
#include "sweep/shard.hpp"
#include "sweep/spec.hpp"
#include "sweep/summary.hpp"
#include "util/table.hpp"

namespace {

void usage(std::ostream& os) {
  os << "usage: sweep <spec-file> [options]\n"
        "  --out FILE      write the summary JSON artifact\n"
        "  --csv FILE      write per-(instance, policy) CSV rows\n"
        "  --threads N     override the spec's worker count (0 = hardware)\n"
        "  --seed S        override the spec's seed\n"
        "  --time-budget-ms MS\n"
        "                  override the per-(instance, policy) wall-clock\n"
        "                  budget (0 disables; timed-out cells are marked\n"
        "                  in the summary, at the cost of determinism)\n"
        "  --shard K/N     run only instances with index % N == K and\n"
        "                  write the shard artifact to --out (requires\n"
        "                  --out; incompatible with --csv/--merge); merging\n"
        "                  all N shards reproduces the unsharded summary\n"
        "                  byte for byte\n"
        "  --merge         treat the positional arguments after the spec\n"
        "                  file as shard artifacts and merge them; --out /\n"
        "                  --csv then write the ordinary summary JSON / CSV\n"
        "  --list-policies print the scheduler registry (names,\n"
        "                  capabilities, config keys with defaults) and\n"
        "                  exit; no spec file needed\n"
        "  --quiet         suppress the progress note on stderr\n";
}

void list_policies(std::ostream& os) {
  // Shares the capability/keys formatters with the quickstart example and
  // schedd's `list_policies` op (sched::capability_string & co.), so the
  // three listings can never drift apart again.
  const auto& registry = dagsched::sched::PolicyRegistry::instance();
  dagsched::TableWriter table(
      {"policy", "capabilities", "config keys (defaults)", "description"});
  table.set_alignment({dagsched::Align::Left, dagsched::Align::Left,
                       dagsched::Align::Left, dagsched::Align::Left});
  for (const std::string& name : registry.names()) {
    const dagsched::sched::PolicyDescriptor& d = registry.descriptor(name);
    table.add_row({d.name, dagsched::sched::capability_string(d.caps),
                   dagsched::sched::config_keys_string(d), d.doc});
  }
  os << "Scheduler registry (spec syntax: `policy name(key=value,...)`):\n"
     << table.render();
}

bool write_file(const std::string& path, const std::string& content) {
  std::ofstream file(path, std::ios::binary);
  if (!file) return false;
  file << content;
  return static_cast<bool>(file);
}

std::string read_file(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  if (!file) {
    throw std::runtime_error("cannot read '" + path + "'");
  }
  std::string content((std::istreambuf_iterator<char>(file)),
                      std::istreambuf_iterator<char>());
  return content;
}

}  // namespace

int main(int argc, char** argv) {
  std::string spec_path;
  std::string out_path;
  std::string csv_path;
  bool quiet = false;
  bool override_threads = false;
  bool override_seed = false;
  bool override_budget = false;
  bool merge_mode = false;
  int shard_index = 0;
  int num_shards = 0;  // 0 = unsharded
  int threads = 0;
  std::uint64_t seed = 0;
  double time_budget_ms = 0.0;
  std::vector<std::string> shard_paths;

  std::vector<std::string> args(argv + 1, argv + argc);
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    auto next_value = [&](const char* flag) -> std::string {
      if (i + 1 >= args.size()) {
        std::cerr << "sweep: " << flag << " needs a value\n";
        std::exit(1);
      }
      return args[++i];
    };
    if (arg == "--help" || arg == "-h") {
      usage(std::cout);
      return 0;
    } else if (arg == "--list-policies") {
      list_policies(std::cout);
      return 0;
    } else if (arg == "--out") {
      out_path = next_value("--out");
    } else if (arg == "--csv") {
      csv_path = next_value("--csv");
    } else if (arg == "--threads") {
      const std::string value = next_value("--threads");
      try {
        std::size_t used = 0;
        threads = std::stoi(value, &used);
        if (used != value.size()) throw std::invalid_argument(value);
      } catch (const std::exception&) {
        std::cerr << "sweep: --threads needs an integer, got '" << value
                  << "'\n";
        return 1;
      }
      override_threads = true;
    } else if (arg == "--seed") {
      const std::string value = next_value("--seed");
      try {
        std::size_t used = 0;
        seed = std::stoull(value, &used);
        if (used != value.size()) throw std::invalid_argument(value);
      } catch (const std::exception&) {
        std::cerr << "sweep: --seed needs an unsigned integer, got '"
                  << value << "'\n";
        return 1;
      }
      override_seed = true;
    } else if (arg == "--time-budget-ms") {
      const std::string value = next_value("--time-budget-ms");
      try {
        std::size_t used = 0;
        time_budget_ms = std::stod(value, &used);
        if (used != value.size() || time_budget_ms < 0) {
          throw std::invalid_argument(value);
        }
      } catch (const std::exception&) {
        std::cerr << "sweep: --time-budget-ms needs a nonnegative number, "
                     "got '" << value << "'\n";
        return 1;
      }
      override_budget = true;
    } else if (arg == "--shard") {
      const std::string value = next_value("--shard");
      const std::size_t slash = value.find('/');
      bool ok = slash != std::string::npos;
      if (ok) {
        try {
          std::size_t used = 0;
          shard_index = std::stoi(value.substr(0, slash), &used);
          ok = used == slash;
          const std::string denom = value.substr(slash + 1);
          used = 0;
          num_shards = std::stoi(denom, &used);
          ok = ok && used == denom.size();
        } catch (const std::exception&) {
          ok = false;
        }
      }
      if (!ok || num_shards < 1 || shard_index < 0 ||
          shard_index >= num_shards) {
        std::cerr << "sweep: --shard needs K/N with 0 <= K < N, got '"
                  << value << "'\n";
        return 1;
      }
    } else if (arg == "--merge") {
      merge_mode = true;
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "sweep: unknown option '" << arg << "'\n";
      usage(std::cerr);
      return 1;
    } else if (spec_path.empty()) {
      spec_path = arg;
    } else if (merge_mode) {
      shard_paths.push_back(arg);
    } else {
      std::cerr << "sweep: multiple spec files given\n";
      return 1;
    }
  }
  if (spec_path.empty()) {
    usage(std::cerr);
    return 1;
  }
  if (num_shards > 0 && merge_mode) {
    std::cerr << "sweep: --shard and --merge are mutually exclusive\n";
    return 1;
  }
  if (num_shards > 0 && !csv_path.empty()) {
    // A shard cannot emit the per-instance CSV: it holds only its own
    // rows, and a partial CSV is indistinguishable from a complete one.
    std::cerr << "sweep: --shard writes a shard artifact, not CSV rows; "
                 "use --csv on the --merge step\n";
    return 1;
  }
  if (num_shards > 0 && out_path.empty()) {
    std::cerr << "sweep: --shard requires --out for the shard artifact\n";
    return 1;
  }
  if (merge_mode && shard_paths.empty()) {
    std::cerr << "sweep: --merge needs shard artifacts after the spec "
                 "file\n";
    return 1;
  }

  try {
    dagsched::sweep::SweepSpec spec =
        dagsched::sweep::load_spec_file(spec_path);
    if (override_threads) spec.threads = threads;
    if (override_seed) spec.seed = seed;
    if (override_budget) spec.time_budget_ms = time_budget_ms;
    spec.validate();
    for (const std::string& warning : spec.warnings) {
      std::cerr << "sweep: warning: " << warning << "\n";
    }

    if (!quiet) {
      std::cerr << "sweep: " << spec.num_instances() << " instances ("
                << spec.families.size() << " families x "
                << spec.topologies.size() << " topologies), "
                << spec.policies.size() << " policies, seed " << spec.seed
                << "\n";
    }

    if (num_shards > 0) {
      // Shard mode: run this shard's slice and write the shard artifact;
      // the ranked table and summary come from the --merge step.
      // LINT-ALLOW(wall-clock): stderr progress timing; never enters the artifact
      const auto start = std::chrono::steady_clock::now();
      const std::string artifact =
          dagsched::sweep::run_shard(spec, shard_index, num_shards);
      const double seconds =
          // LINT-ALLOW(wall-clock): stderr progress timing; never enters the artifact
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        start)
              .count();
      if (!write_file(out_path, artifact)) {
        std::cerr << "sweep: cannot write '" << out_path << "'\n";
        return 1;
      }
      if (!quiet) {
        std::cerr << "sweep: shard " << shard_index << "/" << num_shards
                  << " finished in " << seconds << " s, wrote " << out_path
                  << "\n";
      }
      return 0;
    }

    // LINT-ALLOW(wall-clock): stderr progress timing; never enters the artifact
    const auto start = std::chrono::steady_clock::now();
    dagsched::sweep::SweepResult merged;
    if (merge_mode) {
      std::vector<std::string> artifacts;
      artifacts.reserve(shard_paths.size());
      for (const std::string& path : shard_paths) {
        artifacts.push_back(read_file(path));
      }
      merged = dagsched::sweep::merge_shards(spec, artifacts);
    }
    const dagsched::sweep::SweepResult result =
        merge_mode ? std::move(merged) : dagsched::sweep::run_sweep(spec);
    const auto ranking = dagsched::sweep::summarize(result);
    const double seconds =
        // LINT-ALLOW(wall-clock): stderr progress timing; never enters the artifact
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();

    std::cout << dagsched::sweep::render_summary_table(result, ranking);
    if (!quiet) {
      std::cerr << "sweep: finished in " << seconds << " s on "
                << result.threads_used << " thread(s)\n";
    }

    if (!out_path.empty()) {
      const std::string json =
          dagsched::sweep::summary_json(result, ranking);
      if (!write_file(out_path, json)) {
        std::cerr << "sweep: cannot write '" << out_path << "'\n";
        return 1;
      }
      if (!quiet) std::cerr << "sweep: wrote " << out_path << "\n";
    }
    if (!csv_path.empty()) {
      const std::string csv = dagsched::sweep::per_instance_csv(result);
      if (!write_file(csv_path, csv)) {
        std::cerr << "sweep: cannot write '" << csv_path << "'\n";
        return 1;
      }
      if (!quiet) std::cerr << "sweep: wrote " << csv_path << "\n";
    }
  } catch (const std::exception& error) {
    std::cerr << "sweep: " << error.what() << "\n";
    return 1;
  }
  return 0;
}
