#!/usr/bin/env bash
# Online-scenario acceptance gate (wired into CTest as `sweep_online`):
# runs tools/sweep_online.spec and asserts
#  1. the online summary JSON is byte-identical across worker thread
#     counts (arrival streams obey the same determinism contract as the
#     offline artifact),
#  2. the makespan ranking and the online ranking disagree on the
#     leader — the documented Beránek-style metric flip: the offline
#     makespan leader loses on deadline hit-rate under bursty arrivals,
#  3. the flip is statistically meaningful: the makespan leader's
#     weighted-flow gap against the online leader has a Holm-adjusted
#     Wilcoxon p below 0.05.
#
# Usage: tools/sweep_online.sh <sweep-binary> <spec-file>

set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
sweep_bin="${1:-${repo_root}/build/sweep}"
spec="${2:-${repo_root}/tools/sweep_online.spec}"

if [[ ! -x "${sweep_bin}" ]]; then
  echo "sweep_online.sh: sweep binary not found at ${sweep_bin}" >&2
  exit 1
fi

workdir="$(mktemp -d)"
trap 'rm -rf "${workdir}"' EXIT

"${sweep_bin}" "${spec}" --threads 1 --quiet --out "${workdir}/t1.json" \
  > /dev/null
"${sweep_bin}" "${spec}" --threads 4 --quiet --out "${workdir}/t4.json" \
  > /dev/null

if ! cmp -s "${workdir}/t1.json" "${workdir}/t4.json"; then
  echo "FAIL: online summary JSON differs between 1 and 4 threads" >&2
  diff "${workdir}/t1.json" "${workdir}/t4.json" >&2 || true
  exit 1
fi

python3 - "${workdir}/t1.json" <<'EOF'
import json
import sys

with open(sys.argv[1]) as f:
    summary = json.load(f)

makespan = [row["policy"] for row in summary["ranking"]]
online = summary["online_ranking"]
by_name = {row["policy"]: row for row in summary["ranking"]}
leader_hit = by_name[makespan[0]]["online"]["mean_hit_rate"]
online_hit = by_name[online[0]]["online"]["mean_hit_rate"]
print(f"makespan leader: {makespan[0]} (hit rate {leader_hit})")
print(f"online leader:   {online[0]} (hit rate {online_hit})")
if makespan[0] == online[0]:
    sys.exit("FAIL: bursty arrivals did not flip the ranking leader")
if online_hit <= leader_hit:
    sys.exit("FAIL: the online leader does not win on deadline hit-rate")

loser = by_name[makespan[0]]["online"]["vs_online_leader"]
p = loser["wilcoxon_p_holm"]
print(f"makespan leader vs online leader: p(holm) = {p}")
if p >= 0.05:
    sys.exit(f"FAIL: ranking flip is not Holm-significant (p = {p})")
EOF

echo "OK: Holm-significant online ranking flip reproduced"
