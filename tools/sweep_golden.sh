#!/usr/bin/env bash
# Golden regression gate for the scheduler-registry migration: runs the
# old-style (no parenthesized policy overrides) tools/sweep_golden.spec
# and asserts the summary JSON and the per-instance CSV are byte-identical
# to the committed artifacts under tools/golden/.  This locks that policy
# construction through sched::PolicyRegistry reproduces the historical
# per-policy switch exactly — makespans, ratios, rankings and labels.
#
#   usage: sweep_golden.sh <sweep-binary> <spec-file> <golden-dir>
#
# Regenerating the goldens (only after an *intentional* artifact change,
# with the diff explained in the commit message):
#   build/sweep tools/sweep_golden.spec --quiet \
#     --out tools/golden/sweep_golden.json --csv tools/golden/sweep_golden.csv
set -euo pipefail

if [[ $# -ne 3 ]]; then
  echo "usage: $0 <sweep-binary> <spec-file> <golden-dir>" >&2
  exit 1
fi
sweep_bin=$1
spec=$2
golden_dir=$3

tmp_dir=$(mktemp -d)
trap 'rm -rf "${tmp_dir}"' EXIT

"${sweep_bin}" "${spec}" --quiet \
  --out "${tmp_dir}/summary.json" --csv "${tmp_dir}/rows.csv" > /dev/null

diff -u "${golden_dir}/sweep_golden.json" "${tmp_dir}/summary.json"
diff -u "${golden_dir}/sweep_golden.csv" "${tmp_dir}/rows.csv"
echo "sweep_golden: summary JSON and per-instance CSV are byte-identical"
