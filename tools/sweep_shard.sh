#!/usr/bin/env bash
# Shard/merge determinism gate: runs the spec unsharded, then as three
# process-level shards (sweep --shard K/3), merges the shard artifacts
# (sweep --merge) and asserts the merged summary JSON *and* per-instance
# CSV are byte-identical to the unsharded run.  This locks the tentpole
# contract of process-level sweep sharding: the round-robin partition and
# the bit-exact artifact round-trip (IEEE-754 bit patterns for the online
# doubles) make distribution invisible in the output.
#
# Also exercises the guard rails: a merge with a missing shard and a merge
# against a different seed must fail loudly instead of producing a
# silently wrong summary.
#
#   usage: sweep_shard.sh <sweep-binary> <spec-file>
set -euo pipefail

if [[ $# -ne 2 ]]; then
  echo "usage: $0 <sweep-binary> <spec-file>" >&2
  exit 1
fi
sweep_bin=$1
spec=$2

tmp_dir=$(mktemp -d)
trap 'rm -rf "${tmp_dir}"' EXIT

"${sweep_bin}" "${spec}" --quiet \
  --out "${tmp_dir}/full.json" --csv "${tmp_dir}/full.csv" > /dev/null

for k in 0 1 2; do
  "${sweep_bin}" "${spec}" --quiet --shard "${k}/3" \
    --out "${tmp_dir}/shard_${k}.json" > /dev/null
done

"${sweep_bin}" "${spec}" --quiet --merge \
  "${tmp_dir}/shard_0.json" "${tmp_dir}/shard_1.json" \
  "${tmp_dir}/shard_2.json" \
  --out "${tmp_dir}/merged.json" --csv "${tmp_dir}/merged.csv" > /dev/null

diff -u "${tmp_dir}/full.json" "${tmp_dir}/merged.json"
diff -u "${tmp_dir}/full.csv" "${tmp_dir}/merged.csv"

# Guard rails: an incomplete shard set must be rejected ...
if "${sweep_bin}" "${spec}" --quiet --merge \
     "${tmp_dir}/shard_0.json" "${tmp_dir}/shard_1.json" \
     --out "${tmp_dir}/bad.json" > /dev/null 2> "${tmp_dir}/err1"; then
  echo "sweep_shard: merge with a missing shard unexpectedly succeeded" >&2
  exit 1
fi
grep -q "missing shard" "${tmp_dir}/err1"

# ... and so must a shard produced under a different seed.
"${sweep_bin}" "${spec}" --quiet --seed 424242 --shard 0/3 \
  --out "${tmp_dir}/alien.json" > /dev/null
if "${sweep_bin}" "${spec}" --quiet --merge \
     "${tmp_dir}/alien.json" "${tmp_dir}/shard_1.json" \
     "${tmp_dir}/shard_2.json" \
     --out "${tmp_dir}/bad.json" > /dev/null 2> "${tmp_dir}/err2"; then
  echo "sweep_shard: merge across seeds unexpectedly succeeded" >&2
  exit 1
fi
grep -q "different seed" "${tmp_dir}/err2"

echo "sweep_shard: merged summary JSON and CSV are byte-identical," \
     "mismatched merges rejected"
