#!/usr/bin/env bash
# Fault-injection acceptance gate (wired into CTest as `sweep_faulty`):
# runs tools/sweep_faulty.spec and asserts
#  1. the faulted summary JSON is byte-identical across worker thread
#     counts (the robustness columns obey the same determinism contract
#     as the zero-fault artifact),
#  2. the fault-free ranking and the faulted ranking disagree on the
#     leader — the documented robustness ranking flip,
#  3. the flip is statistically meaningful: the fault-free leader's
#     degradation gap against the least-degrading policy has a
#     Holm-adjusted Wilcoxon p below 0.05.
#
# Usage: tools/sweep_faulty.sh <sweep-binary> <spec-file>

set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
sweep_bin="${1:-${repo_root}/build/sweep}"
spec="${2:-${repo_root}/tools/sweep_faulty.spec}"

if [[ ! -x "${sweep_bin}" ]]; then
  echo "sweep_faulty.sh: sweep binary not found at ${sweep_bin}" >&2
  exit 1
fi

workdir="$(mktemp -d)"
trap 'rm -rf "${workdir}"' EXIT

"${sweep_bin}" "${spec}" --threads 1 --quiet --out "${workdir}/t1.json" \
  > /dev/null
"${sweep_bin}" "${spec}" --threads 4 --quiet --out "${workdir}/t4.json" \
  > /dev/null

if ! cmp -s "${workdir}/t1.json" "${workdir}/t4.json"; then
  echo "FAIL: faulted summary JSON differs between 1 and 4 threads" >&2
  diff "${workdir}/t1.json" "${workdir}/t4.json" >&2 || true
  exit 1
fi

python3 - "${workdir}/t1.json" <<'EOF'
import json
import sys

with open(sys.argv[1]) as f:
    summary = json.load(f)

fault_free = summary["fault_free_ranking"]
faulted = [row["policy"] for row in summary["ranking"]]
print(f"fault-free leader: {fault_free[0]}")
print(f"faulted leader:    {faulted[0]}")
if fault_free[0] == faulted[0]:
    sys.exit("FAIL: fault injection did not flip the ranking leader")

by_name = {row["policy"]: row for row in summary["ranking"]}
loser = by_name[fault_free[0]]["robustness"]["vs_least_degrading"]
p = loser["wilcoxon_p_holm"]
print(f"fault-free leader vs least-degrading: p(holm) = {p}")
if p >= 0.05:
    sys.exit(f"FAIL: ranking flip is not Holm-significant (p = {p})")
EOF

echo "OK: Holm-significant robustness ranking flip reproduced"
