// Statistical SA-vs-HLF comparison on random taskgraphs, in the spirit of
// the Adam/Chandy/Dickinson study the paper cites (900 random graphs, HLF
// within 5% of optimal without communication).  Claims to check:
//   - without communication SA ~ HLF on random DAGs (HLF is already
//     near-optimal there);
//   - with communication SA dominates, and the margin grows with the
//     communication-to-computation ratio.

#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "graph/generators.hpp"
#include "report/experiment.hpp"
#include "topology/builders.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

using namespace dagsched;

int main() {
  benchutil::headline(
      "Random layered taskgraphs - SA vs HLF across communication ratios "
      "(cf. the Adam et al. study cited in par. 1/6)");

  const Topology topology = topo::hypercube(3);
  const int kGraphs = 40;

  TableWriter table({"comm weights", "comm", "graphs", "mean gain %",
                     "min gain %", "max gain %", "SA wins", "ties",
                     "HLF wins"});
  CsvWriter csv({"weight_scale", "with_comm", "seed", "sa_speedup",
                 "hlf_speedup", "gain_pct"});

  struct Config {
    const char* label;
    Time max_weight;
    bool with_comm;
  };
  const std::vector<Config> configs = {
      {"none (w/o comm)", us(std::int64_t{8}), false},
      {"light (<= 4us)", us(std::int64_t{4}), true},
      {"medium (<= 16us)", us(std::int64_t{16}), true},
      {"heavy (<= 40us)", us(std::int64_t{40}), true},
  };

  for (const Config& config : configs) {
    std::vector<double> gains;
    int sa_wins = 0, ties = 0, hlf_wins = 0;
    for (int i = 0; i < kGraphs; ++i) {
      gen::LayeredDagOptions gopt;
      gopt.layers = 8;
      gopt.min_width = 3;
      gopt.max_width = 10;
      gopt.min_duration = us(std::int64_t{10});
      gopt.max_duration = us(std::int64_t{60});
      gopt.min_weight = 0;
      gopt.max_weight = config.max_weight;
      gopt.seed = 1000 + static_cast<std::uint64_t>(i);
      const TaskGraph graph = gen::layered_dag(gopt);

      const CommModel comm = config.with_comm ? CommModel::paper_default()
                                              : CommModel::disabled();
      report::CompareOptions copt;
      copt.sa_seeds = 3;
      const report::ComparisonRow row = report::compare_sa_hlf(
          "rand" + std::to_string(i), graph, topology, comm, copt);
      gains.push_back(row.gain_pct());
      if (row.sa_makespan < row.hlf_makespan) {
        ++sa_wins;
      } else if (row.sa_makespan == row.hlf_makespan) {
        ++ties;
      } else {
        ++hlf_wins;
      }
      csv.add_row({config.label, config.with_comm ? "1" : "0",
                   std::to_string(gopt.seed),
                   benchutil::f2(row.sa_speedup),
                   benchutil::f2(row.hlf_speedup),
                   benchutil::f2(row.gain_pct())});
    }
    const Summary summary = summarize(gains);
    table.add_row({config.label, config.with_comm ? "with" : "w/o",
                   std::to_string(kGraphs), benchutil::f1(summary.mean),
                   benchutil::f1(summary.min), benchutil::f1(summary.max),
                   std::to_string(sa_wins), std::to_string(ties),
                   std::to_string(hlf_wins)});
  }

  std::printf("%s\n", table.render().c_str());
  std::printf("expected shape: gains ~0 without communication, "
              "increasingly positive as weights grow.\n");
  benchutil::write_csv(csv, "random_graphs");
  return 0;
}
