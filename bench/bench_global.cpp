// Extension study: the paper's staged per-packet annealing vs global
// whole-schedule annealing with the simulator as the exact cost oracle
// (see core/global_annealer.hpp).  Finding: despite optimizing the true
// objective, plain global annealing at a thousands-of-simulations budget
// does NOT beat the staged scheme — the packet decomposition prunes the
// search space (8^111 mappings for GJ) so effectively that the cheap
// analytic estimate wins.  This quantifies why the paper's staging is the
// right design, not merely a convenience.

#include <cstdio>

#include "bench_util.hpp"
#include "core/global_annealer.hpp"
#include "report/experiment.hpp"
#include "topology/builders.hpp"
#include "util/table.hpp"
#include "workloads/registry.hpp"

using namespace dagsched;

int main() {
  benchutil::headline(
      "Staged (paper) vs global simulated annealing, hypercube, with "
      "communication");

  TableWriter table({"program", "HLF", "staged SA", "global SA",
                     "global vs staged %", "oracle sims"});
  CsvWriter csv({"program", "hlf_speedup", "staged_speedup",
                 "global_speedup", "global_vs_staged_pct", "simulations"});

  const Topology machine = topo::hypercube(3);
  const CommModel comm = CommModel::paper_default();

  for (const char* program : {"NE", "GJ", "FFT", "MM"}) {
    const workloads::Workload w = workloads::by_name(program);
    const double total = static_cast<double>(w.graph.total_work());

    report::CompareOptions options;
    options.sa_seeds = 3;
    const report::ComparisonRow staged =
        report::compare_sa_hlf(program, w.graph, machine, comm, options);

    sa::GlobalAnnealOptions global_options;
    global_options.seed = 1;
    // One chain: the printed table must be identical on every machine
    // (num_chains = 0 would resolve to the host's core count).
    global_options.num_chains = 1;
    const sa::GlobalAnnealResult global =
        sa::anneal_global(w.graph, machine, comm, global_options);
    const double global_speedup =
        total / static_cast<double>(global.makespan);

    const double vs_staged =
        100.0 * (global_speedup - staged.sa_speedup) / staged.sa_speedup;
    table.add_row({program, benchutil::f2(staged.hlf_speedup),
                   benchutil::f2(staged.sa_speedup),
                   benchutil::f2(global_speedup),
                   benchutil::f1(vs_staged),
                   std::to_string(global.simulations)});
    csv.add_row({program, benchutil::f2(staged.hlf_speedup),
                 benchutil::f2(staged.sa_speedup),
                 benchutil::f2(global_speedup), benchutil::f2(vs_staged),
                 std::to_string(global.simulations)});
  }

  std::printf("%s\n", table.render().c_str());
  std::printf("expected shape: both annealers beat HLF's pinned-replay "
              "quality, but the staged scheme stays ahead of (or ties) the "
              "global one at this budget — the packet decomposition is "
              "doing real search-space pruning, which is the point of the "
              "paper's design.\n");
  benchutil::write_csv(csv, "global");
  return 0;
}
