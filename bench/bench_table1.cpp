// Reproduces Table 1: principal program characteristics of the four
// benchmark programs (task count, mean duration, mean communication, C/C
// ratio, maximum speedup).  The "paper" and "measured" rows should agree to
// rounding; the one known exception is the NE C/C ratio (43.4% measured vs
// 43.0% printed in the paper — the published averages themselves give
// 3.96 / 9.12 = 43.4%).

#include <cstdio>

#include "bench_util.hpp"
#include "graph/analysis.hpp"
#include "util/table.hpp"
#include "workloads/registry.hpp"

using namespace dagsched;

int main() {
  benchutil::headline(
      "Table 1 - principal program characteristics (paper vs measured)");

  TableWriter table({"program", "source", "tasks", "avg dur (us)",
                     "avg comm (us)", "C/C ratio", "max speedup"});
  CsvWriter csv({"program", "source", "tasks", "avg_duration_us",
                 "avg_comm_us", "cc_ratio_pct", "max_speedup"});

  for (const workloads::Workload& w : workloads::paper_programs()) {
    const GraphStats stats = compute_stats(w.graph);
    table.add_row({w.paper.program, "paper", std::to_string(w.paper.tasks),
                   benchutil::f2(w.paper.avg_duration_us),
                   benchutil::f2(w.paper.avg_comm_us),
                   benchutil::f1(w.paper.cc_ratio_pct) + "%",
                   benchutil::f2(w.paper.max_speedup)});
    table.add_row({w.paper.program, "measured", std::to_string(stats.tasks),
                   benchutil::f2(stats.avg_duration_us),
                   benchutil::f2(stats.avg_comm_us),
                   benchutil::f1(stats.cc_ratio_pct) + "%",
                   benchutil::f2(stats.max_speedup)});
    table.add_rule();

    for (const bool paper : {true, false}) {
      csv.add_row({w.paper.program, paper ? "paper" : "measured",
                   std::to_string(paper ? w.paper.tasks : stats.tasks),
                   benchutil::f2(paper ? w.paper.avg_duration_us
                                       : stats.avg_duration_us),
                   benchutil::f2(paper ? w.paper.avg_comm_us
                                       : stats.avg_comm_us),
                   benchutil::f1(paper ? w.paper.cc_ratio_pct
                                       : stats.cc_ratio_pct),
                   benchutil::f2(paper ? w.paper.max_speedup
                                       : stats.max_speedup)});
    }
  }

  std::printf("%s\n", table.render().c_str());
  benchutil::write_csv(csv, "table1");
  return 0;
}
