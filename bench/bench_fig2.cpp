// Reproduces Figure 2: the Gantt chart of the Newton-Euler program
// scheduled by simulated annealing on the 8-processor hypercube (detail of
// the start).  Task blocks occupy the base line of each processor; send
// (S), receive (R) and route (r) handling occupy the half-height rows above
// and below — the textual analogue of the paper's numbered blocks and
// half/quarter-height message blocks.

#include <cstdio>

#include "bench_util.hpp"
#include "core/sa_scheduler.hpp"
#include "report/gantt.hpp"
#include "sim/engine.hpp"
#include "topology/builders.hpp"
#include "util/time.hpp"
#include "workloads/registry.hpp"

using namespace dagsched;

int main() {
  benchutil::headline(
      "Figure 2 - Gantt chart of Newton-Euler on the 8-processor hypercube "
      "(SA schedule, detail of the start)");

  const workloads::Workload w = workloads::by_name("NE");
  const Topology topology = topo::hypercube(3);
  const CommModel comm = CommModel::paper_default();

  sa::SaSchedulerOptions options;
  options.seed = 1;
  sa::SaScheduler scheduler(options);
  const sim::SimResult result =
      sim::simulate(w.graph, topology, comm, scheduler);

  std::printf("makespan: %.1fus, speedup %.2f, %d messages, "
              "utilization %.0f%%\n\n",
              to_us(result.makespan),
              result.speedup(w.graph.total_work()), result.num_messages,
              100.0 * result.utilization());

  report::GanttOptions gantt;
  gantt.width = 110;
  // The paper's figure shows roughly the first 0.3ms window scaled to its
  // page; show the first third of the run.
  gantt.window_start = 0;
  gantt.window_end = result.makespan / 3;
  std::printf("%s\n", report::render_gantt(w.graph, topology, result.trace,
                                           gantt)
                          .c_str());

  std::printf("full run:\n\n");
  report::GanttOptions full;
  full.width = 110;
  full.show_legend = false;
  std::printf("%s\n",
              report::render_gantt(w.graph, topology, result.trace, full)
                  .c_str());

  // CSV mirror: the raw segments, replottable as a real Gantt chart.
  CsvWriter csv({"kind", "proc", "what", "start_us", "end_us"});
  for (const sim::TaskSegment& seg : result.trace.task_segments) {
    csv.add_row({"task", std::to_string(seg.proc),
                 w.graph.task_name(seg.task),
                 std::to_string(to_us(seg.start)),
                 std::to_string(to_us(seg.end))});
  }
  for (const sim::CommSegment& seg : result.trace.comm_segments) {
    csv.add_row({sim::to_string(seg.kind), std::to_string(seg.proc),
                 "msg" + std::to_string(seg.message),
                 std::to_string(to_us(seg.start)),
                 std::to_string(to_us(seg.end))});
  }
  benchutil::write_csv(csv, "fig2");
  return 0;
}
