// Ablation C: the sender-side CPU cost model (see CommModel::send_cpu).
// The paper states receive/route handling preempts the processor but not
// how often the send overhead sigma is paid; this bench quantifies the
// three readings on the full Table 2 grid and shows why PerTaskOutput is
// the default (PerMessage serializes hot producers far below the published
// speedups; Offloaded is the optimistic bound).  It also contrasts the
// crossbar reading of "Bus (star)" with a literal shared-medium bus.

#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "report/experiment.hpp"
#include "topology/builders.hpp"
#include "util/table.hpp"
#include "workloads/registry.hpp"

using namespace dagsched;

int main() {
  benchutil::headline("Ablation - sender CPU models and bus readings");

  TableWriter table({"program", "architecture", "send model", "SA speedup",
                     "HLF speedup", "gain %"});
  CsvWriter csv({"program", "architecture", "send_model", "sa_speedup",
                 "hlf_speedup", "gain_pct"});

  const std::vector<std::pair<SendCpu, const char*>> models = {
      {SendCpu::PerMessage, "per-message"},
      {SendCpu::PerTaskOutput, "per-task-output"},
      {SendCpu::Offloaded, "offloaded"},
  };

  for (const char* program : {"NE", "FFT"}) {
    const workloads::Workload w = workloads::by_name(program);
    const Topology topology = topo::hypercube(3);
    for (const auto& [model, label] : models) {
      CommModel comm = CommModel::paper_default();
      comm.send_cpu = model;
      report::CompareOptions options;
      options.sa_seeds = 3;
      const report::ComparisonRow row =
          report::compare_sa_hlf(program, w.graph, topology, comm, options);
      table.add_row({program, topology.name(), label,
                     benchutil::f2(row.sa_speedup),
                     benchutil::f2(row.hlf_speedup),
                     benchutil::f1(row.gain_pct())});
      csv.add_row({program, topology.name(), label,
                   benchutil::f2(row.sa_speedup),
                   benchutil::f2(row.hlf_speedup),
                   benchutil::f2(row.gain_pct())});
    }
    table.add_rule();
  }

  // Crossbar vs shared-medium reading of "Bus (star)".
  for (const char* program : {"NE", "MM"}) {
    const workloads::Workload w = workloads::by_name(program);
    for (const Topology& topology : {topo::bus(8), topo::shared_bus(8)}) {
      report::CompareOptions options;
      options.sa_seeds = 3;
      const report::ComparisonRow row = report::compare_sa_hlf(
          program, w.graph, topology, CommModel::paper_default(), options);
      table.add_row({program, topology.name(), "per-task-output",
                     benchutil::f2(row.sa_speedup),
                     benchutil::f2(row.hlf_speedup),
                     benchutil::f1(row.gain_pct())});
      csv.add_row({program, topology.name(), "per-task-output",
                   benchutil::f2(row.sa_speedup),
                   benchutil::f2(row.hlf_speedup),
                   benchutil::f2(row.gain_pct())});
    }
    table.add_rule();
  }

  std::printf("%s\n", table.render().c_str());
  std::printf("expected shape: per-message collapses hot-producer programs "
              "far below Table 2; offloaded is mildly optimistic; the "
              "shared-medium bus falls well below the published bus column "
              "(supporting the crossbar reading).\n");
  benchutil::write_csv(csv, "comm_models");
  return 0;
}
