// Reproduces the §6b claim that "the SA algorithm is able to optimally
// solve the Graham list scheduling anomalies".
//
// Graham's classic 9-task / 3-processor instance: with the original
// durations the list schedule (T1..T9) is optimal at 12 units; after
// *reducing* every duration by one unit the same list yields 13 units —
// executing faster finishes later — while the optimum drops to 10 units
// (the critical path T1+T9).  The bench shows the fixed-list anomaly and
// that SA (and HLF, which is also anomaly-prone in general but happens to
// survive here) land on the optimum of the reduced instance.

#include <cstdio>
#include <numeric>

#include "bench_util.hpp"
#include "core/sa_scheduler.hpp"
#include "graph/analysis.hpp"
#include "graph/generators.hpp"
#include "sched/fixed_list.hpp"
#include "sched/hlf.hpp"
#include "sim/engine.hpp"
#include "topology/builders.hpp"
#include "util/table.hpp"

using namespace dagsched;

namespace {

Time run_policy(const TaskGraph& graph, sim::SchedulingPolicy& policy) {
  const Topology machine = topo::complete(3);
  const CommModel comm = CommModel::disabled();
  return sim::simulate(graph, machine, comm, policy).makespan;
}

}  // namespace

int main() {
  benchutil::headline(
      "Graham anomaly (Graham 1969, cited in the paper's par. 6b): "
      "3 processors, list L = (T1..T9)");

  const Time unit = us(std::int64_t{1});
  const TaskGraph original = gen::graham_anomaly(false, unit);
  const TaskGraph reduced = gen::graham_anomaly(true, unit);

  std::vector<TaskId> natural_list(9);
  std::iota(natural_list.begin(), natural_list.end(), 0);

  TableWriter table({"instance", "scheduler", "makespan (units)",
                     "critical path", "note"});
  CsvWriter csv({"instance", "scheduler", "makespan_units"});

  const auto row = [&](const char* instance, const char* name,
                       Time makespan, Time cp, const char* note) {
    table.add_row({instance, name,
                   benchutil::f1(to_us(makespan)),
                   benchutil::f1(to_us(cp)), note});
    csv.add_row({instance, name, benchutil::f1(to_us(makespan))});
  };

  for (const bool is_reduced : {false, true}) {
    const TaskGraph& graph = is_reduced ? reduced : original;
    const char* label = is_reduced ? "reduced (-1 unit)" : "original";
    const Time cp = critical_path(graph).length;

    sched::FixedListScheduler list_sched(natural_list);
    const Time list_makespan = run_policy(graph, list_sched);
    row(label, "fixed list", list_makespan, cp,
        is_reduced ? "ANOMALY: faster tasks, longer schedule" : "optimal");

    sched::HlfScheduler hlf;
    row(label, "HLF", run_policy(graph, hlf), cp, "");

    Time best_sa = kTimeInfinity;
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
      sa::SaSchedulerOptions options;
      options.seed = seed;
      sa::SaScheduler scheduler(options);
      best_sa = std::min(best_sa, run_policy(graph, scheduler));
    }
    row(label, "SA (best of 5)", best_sa, cp,
        best_sa <= cp ? "optimal (= critical path)" : "");
    table.add_rule();
  }

  std::printf("%s\n", table.render().c_str());
  std::printf("expected: original fixed-list = 12, reduced fixed-list = 13 "
              "(the anomaly), reduced optimum = 10.\n");
  benchutil::write_csv(csv, "anomaly");
  return 0;
}
