// Reproduces Figure 1: the level- (F_b), communication- (F_c) and total
// cost trajectories of one annealing packet of the Newton-Euler program on
// the 8-node hypercube, with w_b = w_c = 0.5.  The figure's qualitative
// content — both the balancing and the communication cost decrease as the
// packet anneals from a random initial mapping — is printed as a sampled
// table, an ASCII chart, and a CSV for replotting.  The packet statistics
// reported in §6a (tasks per packet / free processors per packet) are
// printed alongside.

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "core/sa_scheduler.hpp"
#include "sim/engine.hpp"
#include "topology/builders.hpp"
#include "util/table.hpp"
#include "workloads/registry.hpp"

using namespace dagsched;

namespace {

/// ASCII line chart of one series over iterations.
void chart(const std::string& label, const std::vector<double>& series) {
  if (series.empty()) return;
  const double lo = *std::min_element(series.begin(), series.end());
  const double hi = *std::max_element(series.begin(), series.end());
  const int kRows = 12;
  const int kCols = 96;
  std::vector<std::string> grid(kRows, std::string(kCols, ' '));
  for (int c = 0; c < kCols; ++c) {
    const std::size_t idx =
        std::min(series.size() - 1,
                 static_cast<std::size_t>(c) * series.size() /
                     static_cast<std::size_t>(kCols));
    const double v = series[idx];
    const double frac = hi > lo ? (v - lo) / (hi - lo) : 0.5;
    const int r = std::clamp(static_cast<int>((1.0 - frac) * (kRows - 1)),
                             0, kRows - 1);
    grid[static_cast<std::size_t>(r)][static_cast<std::size_t>(c)] = '*';
  }
  std::printf("%s  (min %.3f, max %.3f)\n", label.c_str(), lo, hi);
  for (const std::string& row : grid) std::printf("  |%s\n", row.c_str());
  std::printf("  +%s> iterations\n\n", std::string(kCols, '-').c_str());
}

}  // namespace

int main() {
  benchutil::headline(
      "Figure 1 - cost trajectories of one NE annealing packet "
      "(hypercube, wb = wc = 0.5)");

  const workloads::Workload w = workloads::by_name("NE");
  const Topology topology = topo::hypercube(3);
  const CommModel comm = CommModel::paper_default();

  sa::SaSchedulerOptions options;
  options.seed = 7;
  options.record_trajectories = true;
  // The paper's figure starts from a visibly random mapping so both cost
  // terms have room to fall; reproduce that regime.
  options.anneal.init = sa::InitKind::Random;
  sa::SaScheduler scheduler(options);
  const sim::SimResult result =
      sim::simulate(w.graph, topology, comm, scheduler);

  const sa::SaRunStats& stats = scheduler.stats();
  std::printf("run: makespan %.1fus, %d packets for %d tasks "
              "(paper: 65 packets for 95 tasks)\n",
              to_us(result.makespan), stats.packets, w.graph.num_tasks());
  std::printf("packet averages: %.1f candidates for %.2f free processors "
              "(paper: 15 for 1.46)\n\n",
              stats.mean_candidates(), stats.mean_idle_procs());

  // Pick the "most interesting" packet: the one with the largest
  // candidates x processors product, like the figure's packet.
  const sa::PacketTrajectory* best = nullptr;
  for (const sa::PacketTrajectory& t : scheduler.trajectories()) {
    if (t.points.empty()) continue;
    if (best == nullptr ||
        t.candidates * t.idle_procs > best->candidates * best->idle_procs) {
      best = &t;
    }
  }
  if (best == nullptr) {
    std::printf("no annealed packet recorded (unexpected)\n");
    return 1;
  }
  std::printf("selected packet: epoch %d at t=%.1fus, %d candidates, %d "
              "idle processors, %zu iterations\n\n",
              best->epoch_index, to_us(best->when), best->candidates,
              best->idle_procs, best->points.size());

  TableWriter table({"iteration", "temperature", "level cost Fb (us)",
                     "comm cost Fc (us)", "total cost F"});
  CsvWriter csv({"iteration", "temperature", "accepted", "level_cost_us",
                 "comm_cost_us", "total_cost"});
  std::vector<double> fb, fc, ftot;
  for (const sa::TrajectoryPoint& p : best->points) {
    fb.push_back(p.load_cost);
    fc.push_back(p.comm_cost);
    ftot.push_back(p.total_cost);
    csv.add_row({std::to_string(p.iteration), benchutil::f2(p.temperature),
                 p.accepted ? "1" : "0", benchutil::f2(p.load_cost),
                 benchutil::f2(p.comm_cost),
                 std::to_string(p.total_cost)});
  }
  const std::size_t step = std::max<std::size_t>(1, best->points.size() / 16);
  for (std::size_t i = 0; i < best->points.size(); i += step) {
    const sa::TrajectoryPoint& p = best->points[i];
    table.add_row({std::to_string(p.iteration), benchutil::f2(p.temperature),
                   benchutil::f2(p.load_cost), benchutil::f2(p.comm_cost),
                   std::to_string(p.total_cost)});
  }
  std::printf("%s\n", table.render().c_str());

  chart("level cost Fb (eq. 3)", fb);
  chart("communication cost Fc (eq. 5)", fc);
  chart("total cost F (eq. 6)", ftot);

  const bool fb_fell = fb.front() >= fb.back();
  const bool fc_fell = fc.front() >= fc.back();
  const bool ftot_fell = ftot.front() > ftot.back();
  std::printf("shape check: Fb %s, Fc %s, Ftot %s over the trajectory "
              "(paper: all decrease)\n",
              fb_fell ? "fell" : "ROSE", fc_fell ? "fell" : "ROSE",
              ftot_fell ? "fell" : "ROSE");
  benchutil::write_csv(csv, "fig1");
  return 0;
}
