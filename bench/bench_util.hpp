#pragma once

// Shared plumbing for the benchmark harnesses: headline printing and
// best-effort CSV mirroring under bench_out/.

#include <cstdio>
#include <string>

#include "util/csv.hpp"

namespace dagsched::benchutil {

inline void headline(const std::string& title) {
  std::printf("\n=== %s ===\n\n", title.c_str());
}

/// Writes the CSV next to the current working directory; failures are
/// reported but never fatal (the printed tables are the primary output).
inline void write_csv(const CsvWriter& csv, const std::string& name) {
  const std::string path = "bench_out/" + name + ".csv";
  if (csv.write_file(path)) {
    std::printf("[csv] wrote %s (%zu rows)\n", path.c_str(), csv.num_rows());
  } else {
    std::printf("[csv] could not write %s (continuing)\n", path.c_str());
  }
}

/// Formats a double with two decimals (the paper's precision).
inline std::string f2(double value) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.2f", value);
  return buffer;
}

inline std::string f1(double value) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.1f", value);
  return buffer;
}

}  // namespace dagsched::benchutil
