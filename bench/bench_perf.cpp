// Throughput microbenchmarks (google-benchmark): the hot paths of the
// library — level computation, packet cost evaluation, annealing sweeps,
// and full simulated executions.

#include <benchmark/benchmark.h>

#include <cstdint>
#include <vector>

#include "core/annealer.hpp"
#include "core/cost.hpp"
#include "core/global_annealer.hpp"
#include "core/incremental_cost.hpp"
#include "core/packet.hpp"
#include "core/sa_scheduler.hpp"
#include "graph/analysis.hpp"
#include "graph/generators.hpp"
#include "sched/hlf.hpp"
#include "sim/engine.hpp"
#include "topology/builders.hpp"
#include "workloads/registry.hpp"

namespace {

using namespace dagsched;

void BM_TaskLevels(benchmark::State& state) {
  gen::GnpDagOptions options;
  options.num_tasks = static_cast<int>(state.range(0));
  options.edge_probability = 0.05;
  options.seed = 42;
  const TaskGraph graph = gen::gnp_dag(options);
  for (auto _ : state) {
    benchmark::DoNotOptimize(task_levels(graph));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_TaskLevels)->Arg(100)->Arg(1000)->Arg(5000);

void BM_CriticalPath(benchmark::State& state) {
  gen::GnpDagOptions options;
  options.num_tasks = static_cast<int>(state.range(0));
  options.edge_probability = 0.05;
  options.seed = 42;
  const TaskGraph graph = gen::gnp_dag(options);
  for (auto _ : state) {
    benchmark::DoNotOptimize(critical_path(graph));
  }
}
BENCHMARK(BM_CriticalPath)->Arg(100)->Arg(1000);

/// Builds a synthetic annealing packet of `n` candidate tasks for 8
/// processors with random levels and inputs.
sa::AnnealingPacket synthetic_packet(int n, const Topology& topology) {
  sa::AnnealingPacket packet;
  Rng rng(7);
  for (ProcId p = 0; p < topology.num_procs(); ++p) packet.procs.push_back(p);
  for (int i = 0; i < n; ++i) {
    sa::PacketTask task;
    task.task = i;
    task.level = us(rng.uniform_int(10, 500));
    const int inputs = static_cast<int>(rng.uniform_int(0, 3));
    for (int j = 0; j < inputs; ++j) {
      const Time weight = us(rng.uniform_int(1, 16));
      task.inputs.push_back(sa::PacketTask::Input{
          static_cast<ProcId>(rng.uniform_index(
              static_cast<std::size_t>(topology.num_procs()))),
          weight});
      task.total_input_weight += weight;
    }
    packet.tasks.push_back(std::move(task));
  }
  return packet;
}

void BM_PacketCostEvaluate(benchmark::State& state) {
  const Topology topology = topo::hypercube(3);
  const CommModel comm = CommModel::paper_default();
  const sa::AnnealingPacket packet =
      synthetic_packet(static_cast<int>(state.range(0)), topology);
  const sa::PacketCostModel cost(packet, topology, comm, 0.5, 0.5);
  Rng rng(1);
  const sa::Mapping mapping =
      sa::Mapping::initial(packet, sa::InitKind::Random, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(cost.evaluate(mapping));
  }
}
BENCHMARK(BM_PacketCostEvaluate)->Arg(8)->Arg(32)->Arg(128);

void BM_MoveDelta(benchmark::State& state) {
  // The O(1) fast path in isolation: propose + price a move, never accept.
  const Topology topology = topo::hypercube(3);
  const CommModel comm = CommModel::paper_default();
  const sa::AnnealingPacket packet =
      synthetic_packet(static_cast<int>(state.range(0)), topology);
  const sa::PacketCostModel cost(packet, topology, comm, 0.5, 0.5);
  Rng rng(3);
  const sa::Mapping mapping =
      sa::Mapping::initial(packet, sa::InitKind::Random, rng);
  sa::Move move;
  for (auto _ : state) {
    mapping.propose(packet, rng, move);
    benchmark::DoNotOptimize(cost.move_delta(mapping, move));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MoveDelta)->Arg(8)->Arg(32)->Arg(128);

void BM_MoveDeltaBatch(benchmark::State& state) {
  // The SoA pricing primitive: slot_move_totals streams two contiguous
  // per-slot columns and prices moving every task between them in one
  // vectorized loop; items = priced moves, directly comparable to
  // BM_MoveDelta's one-at-a-time rate.
  const Topology topology = topo::hypercube(3);
  const CommModel comm = CommModel::paper_default();
  const sa::AnnealingPacket packet =
      synthetic_packet(static_cast<int>(state.range(0)), topology);
  const sa::PacketCostModel cost(packet, topology, comm, 0.5, 0.5);
  std::vector<double> totals(static_cast<std::size_t>(cost.num_tasks()));
  int from = 0;
  int to = 1;
  for (auto _ : state) {
    cost.slot_move_totals(from, to, totals);
    benchmark::DoNotOptimize(totals.data());
    benchmark::ClobberMemory();
    // Rotate the slot pair so the run covers every column.
    to = to + 1 == cost.num_procs() ? 0 : to + 1;
    if (to == from) from = from + 1 == cost.num_procs() ? 0 : from + 1;
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_MoveDeltaBatch)->Arg(8)->Arg(32)->Arg(128);

void BM_AnnealPacket(benchmark::State& state) {
  const Topology topology = topo::hypercube(3);
  const CommModel comm = CommModel::paper_default();
  const sa::AnnealingPacket packet =
      synthetic_packet(static_cast<int>(state.range(0)), topology);
  const sa::PacketCostModel cost(packet, topology, comm, 0.5, 0.5);
  sa::AnnealOptions options;
  std::int64_t iterations = 0;
  for (auto _ : state) {
    Rng rng(99);
    const sa::AnnealResult result =
        sa::anneal_packet(packet, cost, options, rng);
    iterations += result.iterations;
    benchmark::DoNotOptimize(result.best_cost.total);
  }
  state.SetItemsProcessed(iterations);  // proposed moves per second
}
BENCHMARK(BM_AnnealPacket)->Arg(8)->Arg(32)->Arg(128);

void BM_SimulateHlf(benchmark::State& state) {
  const workloads::Workload w = workloads::by_name("GJ");
  const Topology topology = topo::hypercube(3);
  const CommModel comm = CommModel::paper_default();
  sim::SimOptions options;
  options.record_trace = false;
  for (auto _ : state) {
    sched::HlfScheduler hlf;
    benchmark::DoNotOptimize(
        sim::simulate(w.graph, topology, comm, hlf, options).makespan);
  }
  state.SetItemsProcessed(state.iterations() * w.graph.num_tasks());
}
BENCHMARK(BM_SimulateHlf);

void BM_SimulateSa(benchmark::State& state) {
  const workloads::Workload w = workloads::by_name("GJ");
  const Topology topology = topo::hypercube(3);
  const CommModel comm = CommModel::paper_default();
  sim::SimOptions options;
  options.record_trace = false;
  for (auto _ : state) {
    sa::SaScheduler scheduler;
    benchmark::DoNotOptimize(
        sim::simulate(w.graph, topology, comm, scheduler, options).makespan);
  }
  state.SetItemsProcessed(state.iterations() * w.graph.num_tasks());
}
BENCHMARK(BM_SimulateSa);

void BM_GlobalOracle(benchmark::State& state, sa::CostOracleKind kind) {
  // Proposed-moves/s through the global annealer's cost-oracle seam:
  // one complete single-chain anneal_global trajectory (HLF seed,
  // default cooling and patience) on a random DAG of range(0) tasks over
  // 8 processors, per iteration.  The full/incremental runs share the
  // seed, so they price the exact same move stream (and the equivalence
  // contract makes every makespan — and thus the trajectory — identical);
  // items_per_second compares the oracles head to head.
  gen::GnpDagOptions options;
  options.num_tasks = static_cast<int>(state.range(0));
  options.edge_probability = 6.0 / static_cast<double>(options.num_tasks);
  options.seed = 42;
  const TaskGraph graph = gen::gnp_dag(options);
  const Topology topology = topo::hypercube(3);
  const CommModel comm = CommModel::paper_default();

  sa::GlobalAnnealOptions anneal;
  anneal.num_chains = 1;
  anneal.seed = 7;
  anneal.oracle = kind;

  std::int64_t proposals = 0;
  for (auto _ : state) {
    const sa::GlobalAnnealResult result =
        sa::anneal_global(graph, topology, comm, anneal);
    proposals += result.simulations;
    benchmark::DoNotOptimize(result.makespan);
  }
  state.SetItemsProcessed(proposals);  // proposed moves per second
}
BENCHMARK_CAPTURE(BM_GlobalOracle, full, sa::CostOracleKind::kFullReplay)
    ->Arg(128)
    ->UseRealTime();
BENCHMARK_CAPTURE(BM_GlobalOracle, incremental,
                  sa::CostOracleKind::kIncremental)
    ->Arg(128)
    ->UseRealTime();

void BM_GlobalOracleBatch(benchmark::State& state) {
  // Batched oracle pricing head to head with one-at-a-time proposing:
  // the exact BM_GlobalOracle/incremental workload (same graph, seed and
  // trajectory — batching is bit-compatible for any cap), with range(0)
  // as GlobalAnnealOptions::batch_proposals.  /1 disables batching, so
  // the /16 and /64 rows isolate what price_batch amortization buys.
  gen::GnpDagOptions options;
  options.num_tasks = 128;
  options.edge_probability = 6.0 / 128.0;
  options.seed = 42;
  const TaskGraph graph = gen::gnp_dag(options);
  const Topology topology = topo::hypercube(3);
  const CommModel comm = CommModel::paper_default();

  sa::GlobalAnnealOptions anneal;
  anneal.num_chains = 1;
  anneal.seed = 7;
  anneal.oracle = sa::CostOracleKind::kIncremental;
  anneal.batch_proposals = static_cast<int>(state.range(0));

  std::int64_t proposals = 0;
  for (auto _ : state) {
    const sa::GlobalAnnealResult result =
        sa::anneal_global(graph, topology, comm, anneal);
    proposals += result.simulations;
    benchmark::DoNotOptimize(result.makespan);
  }
  state.SetItemsProcessed(proposals);  // proposed moves per second
}
BENCHMARK(BM_GlobalOracleBatch)->Arg(1)->Arg(16)->Arg(64)->UseRealTime();

void BM_AnnealGlobal(benchmark::State& state) {
  // Whole-schedule annealing; range(0) is the chain count (0 = auto).
  const workloads::Workload w = workloads::by_name("NE");
  const Topology topology = topo::hypercube(3);
  const CommModel comm = CommModel::paper_default();
  sa::GlobalAnnealOptions options;
  options.cooling.max_steps = 10;
  options.num_chains = static_cast<int>(state.range(0));
  std::int64_t simulations = 0;
  for (auto _ : state) {
    const sa::GlobalAnnealResult result =
        sa::anneal_global(w.graph, topology, comm, options);
    simulations += result.simulations;
    benchmark::DoNotOptimize(result.makespan);
  }
  state.SetItemsProcessed(simulations);  // cost-oracle replays per second
}
BENCHMARK(BM_AnnealGlobal)->Arg(1)->Arg(2)->Arg(4)->UseRealTime();

}  // namespace
