// Ablation A: the cost-function weight split w_b / w_c (paper §4.2c: the
// weights "can be tuned to optimize the allocation for the highest
// speed-up"; Figure 1 uses w_b = w_c = 0.5).  Sweeps w_c from 0 (pure load
// balancing — HLF-like) to 1 (pure communication avoidance) on the two
// programs with the strongest placement sensitivity.

#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "report/experiment.hpp"
#include "topology/builders.hpp"
#include "util/table.hpp"
#include "workloads/registry.hpp"

using namespace dagsched;

int main() {
  benchutil::headline(
      "Ablation - cost weight sweep wc (communication) vs wb = 1 - wc");

  const std::vector<double> wc_values = {0.0, 0.1, 0.25, 0.5,
                                         0.75, 0.9, 1.0};
  const std::vector<const char*> programs = {"NE", "MM"};
  const std::vector<Topology> topologies = {topo::hypercube(3),
                                            topo::ring(9)};

  TableWriter table({"program", "architecture", "wc", "SA speedup",
                     "gain over HLF %"});
  CsvWriter csv({"program", "architecture", "wc", "sa_speedup",
                 "hlf_speedup", "gain_pct"});

  for (const char* program : programs) {
    const workloads::Workload w = workloads::by_name(program);
    for (const Topology& topology : topologies) {
      for (const double wc : wc_values) {
        report::CompareOptions options;
        options.sa_seeds = 3;
        options.anneal.wc = wc;
        options.anneal.wb = 1.0 - wc;
        const report::ComparisonRow row = report::compare_sa_hlf(
            program, w.graph, topology, CommModel::paper_default(), options);
        table.add_row({program, topology.name(), benchutil::f2(wc),
                       benchutil::f2(row.sa_speedup),
                       benchutil::f1(row.gain_pct())});
        csv.add_row({program, topology.name(), benchutil::f2(wc),
                     benchutil::f2(row.sa_speedup),
                     benchutil::f2(row.hlf_speedup),
                     benchutil::f2(row.gain_pct())});
      }
      table.add_rule();
    }
  }

  std::printf("%s\n", table.render().c_str());
  std::printf("expected shape: wc = 0 degenerates toward HLF-like "
              "placement; a balanced-to-comm-leaning split performs best "
              "with communication enabled.\n");
  benchutil::write_csv(csv, "weights");
  return 0;
}
