// Ablation B: the cooling schedule and iteration budget.  The paper
// publishes only the stop rule (constant cost for five iterations or a
// preset maximum); this bench shows the result is robust across schedule
// kinds and budgets, and reports the annealing effort each one spends.

#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "report/experiment.hpp"
#include "topology/builders.hpp"
#include "util/table.hpp"
#include "workloads/registry.hpp"

using namespace dagsched;

int main() {
  benchutil::headline("Ablation - cooling schedules and budgets (NE on "
                      "hypercube, with communication)");

  const workloads::Workload w = workloads::by_name("NE");
  const Topology topology = topo::hypercube(3);
  const CommModel comm = CommModel::paper_default();

  TableWriter table({"schedule", "t0", "steps", "SA speedup",
                     "gain over HLF %", "iterations", "early stops"});
  CsvWriter csv({"schedule", "t0", "max_steps", "sa_speedup", "gain_pct",
                 "iterations", "early_stops"});

  struct Config {
    sa::CoolingKind kind;
    double t0;
    int max_steps;
  };
  const std::vector<Config> configs = {
      {sa::CoolingKind::Geometric, 2.0, 60},
      {sa::CoolingKind::Geometric, 2.0, 20},
      {sa::CoolingKind::Geometric, 0.5, 60},
      {sa::CoolingKind::Geometric, 8.0, 60},
      {sa::CoolingKind::Linear, 2.0, 60},
      {sa::CoolingKind::Logarithmic, 2.0, 60},
      {sa::CoolingKind::Constant, 0.05, 60},
  };

  for (const Config& config : configs) {
    report::CompareOptions options;
    options.sa_seeds = 3;
    options.anneal.cooling.kind = config.kind;
    options.anneal.cooling.t0 = config.t0;
    options.anneal.cooling.max_steps = config.max_steps;
    const report::ComparisonRow row =
        report::compare_sa_hlf("NE", w.graph, topology, comm, options);
    table.add_row({sa::to_string(config.kind), benchutil::f2(config.t0),
                   std::to_string(config.max_steps),
                   benchutil::f2(row.sa_speedup),
                   benchutil::f1(row.gain_pct()),
                   std::to_string(row.sa_stats.total_iterations),
                   std::to_string(row.sa_stats.packets_converged_early)});
    csv.add_row({sa::to_string(config.kind), benchutil::f2(config.t0),
                 std::to_string(config.max_steps),
                 benchutil::f2(row.sa_speedup),
                 benchutil::f2(row.gain_pct()),
                 std::to_string(row.sa_stats.total_iterations),
                 std::to_string(row.sa_stats.packets_converged_early)});
  }

  std::printf("%s\n", table.render().c_str());
  std::printf("expected shape: results are robust across schedules; the "
              "stop rule trims iterations without hurting the speedup.\n");
  benchutil::write_csv(csv, "cooling");
  return 0;
}
