// Reproduces Table 2: speedups of simulated annealing vs the HLF list
// algorithm for the four programs on the three architectures, with and
// without communication.  Absolute values depend on the reconstructed
// simulator; the claims to check are the *shape* ones:
//   - without communication SA matches HLF (gains ~0);
//   - with communication SA consistently outperforms HLF;
//   - the bus (distance-1) tops the hypercube, the ring suffers most from
//     routing, and the largest gains appear where locality can be
//     exploited (NE chains, MM row broadcasts).

#include <cstdio>

#include "bench_util.hpp"
#include "report/experiment.hpp"
#include "report/paper.hpp"
#include "util/table.hpp"

using namespace dagsched;

int main() {
  benchutil::headline("Table 2 - speedups: SA vs HLF (paper vs measured)");

  report::CompareOptions options;
  options.sa_seeds = 5;

  TableWriter table({"program", "architecture", "comm", "(Sp)SA", "(Sp)HLF",
                     "% gain", "paper SA", "paper HLF", "paper % gain"});
  CsvWriter csv({"program", "architecture", "with_comm", "sa_speedup",
                 "hlf_speedup", "gain_pct", "paper_sa", "paper_hlf",
                 "paper_gain_pct"});

  int sign_matches = 0;
  int cells = 0;
  for (const report::ComparisonRow& row : report::table2_sweep(options)) {
    const auto paper =
        report::paper_speedup(row.program, row.topology, row.with_comm);
    const std::string comm_label = row.with_comm ? "with" : "w/o";
    std::string paper_sa = "-";
    std::string paper_hlf = "-";
    std::string paper_gain = "-";
    if (paper.has_value()) {
      paper_sa = benchutil::f2(paper->sa);
      paper_hlf = benchutil::f2(paper->hlf);
      paper_gain = benchutil::f1(paper->gain_pct());
      ++cells;
      // Shape check: the gain has the same sign (treating <1% as zero).
      const double measured = row.gain_pct();
      const double published = paper->gain_pct();
      const auto sign = [](double g) { return g > 1.0 ? 1 : (g < -1.0 ? -1
                                                                      : 0); };
      if (sign(measured) == sign(published) ||
          (sign(published) == 0 && sign(measured) >= 0) ||
          (sign(published) > 0 && sign(measured) > 0)) {
        ++sign_matches;
      }
    }
    table.add_row({row.program, row.topology, comm_label,
                   benchutil::f2(row.sa_speedup),
                   benchutil::f2(row.hlf_speedup),
                   benchutil::f1(row.gain_pct()), paper_sa, paper_hlf,
                   paper_gain});
    csv.add_row({row.program, row.topology, row.with_comm ? "1" : "0",
                 benchutil::f2(row.sa_speedup),
                 benchutil::f2(row.hlf_speedup),
                 benchutil::f2(row.gain_pct()), paper_sa, paper_hlf,
                 paper_gain});
  }

  std::printf("%s\n", table.render().c_str());
  std::printf("shape check: measured gain sign matches the paper in %d/%d "
              "cells\n",
              sign_matches, cells);
  benchutil::write_csv(csv, "table2");
  return 0;
}
