// Extension study: how the SA-over-HLF advantage scales with the machine.
// Sweeps hypercube dimension 1..4 and ring size 3..17 on the two most
// placement-sensitive programs.  Expected shape: the advantage grows with
// the network diameter (more routing to avoid), and collapses when the
// machine is so small that placement barely matters.

#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "report/experiment.hpp"
#include "sched/etf.hpp"
#include "sim/engine.hpp"
#include "topology/builders.hpp"
#include "util/table.hpp"
#include "workloads/registry.hpp"

using namespace dagsched;

int main() {
  benchutil::headline(
      "Scaling study - SA vs HLF vs ETF across machine sizes (with "
      "communication)");

  TableWriter table({"program", "architecture", "procs", "diameter",
                     "SA", "HLF", "ETF", "SA gain %"});
  CsvWriter csv({"program", "architecture", "procs", "diameter",
                 "sa_speedup", "hlf_speedup", "etf_speedup", "gain_pct"});

  const CommModel comm = CommModel::paper_default();
  std::vector<Topology> machines;
  for (int dim = 1; dim <= 4; ++dim) machines.push_back(topo::hypercube(dim));
  for (int n : {3, 5, 9, 13, 17}) machines.push_back(topo::ring(n));

  for (const char* program : {"NE", "MM"}) {
    const workloads::Workload w = workloads::by_name(program);
    for (const Topology& machine : machines) {
      report::CompareOptions options;
      options.sa_seeds = 3;
      const report::ComparisonRow row =
          report::compare_sa_hlf(program, w.graph, machine, comm, options);

      sched::EtfScheduler etf;
      sim::SimOptions sim_options;
      sim_options.record_trace = false;
      const double etf_speedup =
          sim::simulate(w.graph, machine, comm, etf, sim_options)
              .speedup(w.graph.total_work());

      table.add_row({program, machine.name(),
                     std::to_string(machine.num_procs()),
                     std::to_string(machine.diameter()),
                     benchutil::f2(row.sa_speedup),
                     benchutil::f2(row.hlf_speedup),
                     benchutil::f2(etf_speedup),
                     benchutil::f1(row.gain_pct())});
      csv.add_row({program, machine.name(),
                   std::to_string(machine.num_procs()),
                   std::to_string(machine.diameter()),
                   benchutil::f2(row.sa_speedup),
                   benchutil::f2(row.hlf_speedup),
                   benchutil::f2(etf_speedup),
                   benchutil::f2(row.gain_pct())});
    }
    table.add_rule();
  }

  std::printf("%s\n", table.render().c_str());
  std::printf("expected shape: SA's advantage over HLF grows with the "
              "diameter; ETF closes part of the gap (it shares SA's cost "
              "signal) but stays greedy.\n");
  benchutil::write_csv(csv, "scaling");
  return 0;
}
