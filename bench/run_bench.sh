#!/usr/bin/env bash
# Runs the google-benchmark microbenchmark suite and writes BENCH_perf.json
# at the repo root — the machine-readable perf trajectory consumed by
# PERFORMANCE.md and compared across PRs.
#
# Usage: bench/run_bench.sh [extra bench_perf args...]
#   e.g. bench/run_bench.sh --benchmark_filter='BM_AnnealPacket'
#
# The build directory defaults to ./build (the tier-1 layout); override
# with BUILD_DIR=path bench/run_bench.sh.

set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${BUILD_DIR:-${repo_root}/build}"
bench_bin="${build_dir}/bench_perf"

if [[ ! -x "${bench_bin}" ]]; then
  echo "bench_perf not found at ${bench_bin}; building..." >&2
  cmake -B "${build_dir}" -S "${repo_root}"
  cmake --build "${build_dir}" --target bench_perf -j
fi

out="${repo_root}/BENCH_perf.json"

# Preserve the previous artifact so the fresh run can be diffed against it.
previous=""
if [[ -f "${out}" ]]; then
  previous="$(mktemp)"
  trap 'rm -f "${previous}"' EXIT
  cp "${out}" "${previous}"
fi

"${bench_bin}" \
  --benchmark_format=json \
  --benchmark_out="${out}" \
  --benchmark_out_format=json \
  "$@"
echo "wrote ${out}"

# Print the regression table (advisory: >10% moves/s drops are flagged but
# do not fail the run — see tools/bench_diff.py --strict).
if [[ -n "${previous}" ]] && command -v python3 > /dev/null; then
  echo
  python3 "${repo_root}/tools/bench_diff.py" "${previous}" "${out}" || true
fi
